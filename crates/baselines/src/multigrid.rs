//! Multigrid Poisson solver with the fine level on the (simulated) GPU.
//!
//! The V-cycle's cost profile is extreme: >85% of the work is fine-level
//! smoothing, which is exactly a tiled stencil sweep — so the fine level
//! runs through the full TiDA-acc pipeline (ghost exchange + Jacobi
//! kernels + residual kernels per region), while the coarse hierarchy (≤ n/2,
//! ≤ 1/8 the cells) is solved on the host between device phases, charged on
//! the host clock. This is the standard fine-on-GPU / coarse-on-CPU split
//! for structured multigrid of the paper's era, and the kind of BoxLib-style
//! application TiDA was built for.

use crate::common::RunResult;
use gpu_sim::{GpuSystem, KernelCost, MachineConfig, SimTime};
use kernels::{jacobi, multigrid};
use std::sync::Arc;
use tida::{
    tiles_of, Box3, Decomposition, Domain, ExchangeMode, IntVect, RegionSpec, TileArray, TileSpec,
    View, ViewMut,
};
use tida_acc::{AccOptions, ArrayId, TileAcc};

/// Result of a multigrid run: per-cycle residual norms plus timing.
pub struct MgResult {
    pub run: RunResult,
    /// Max-norm residual after each V-cycle (cycle 0 = initial).
    pub residuals: Vec<f64>,
}

/// Jacobi sweep with explicit spacing² (the fine level of the V-cycle).
fn sweep_tile_h2(unew: &mut ViewMut<'_>, u: &View<'_>, f: &View<'_>, bx: &Box3, h2: f64) {
    for iv in bx.iter() {
        let sum = u.at(iv + IntVect::new(1, 0, 0))
            + u.at(iv - IntVect::new(1, 0, 0))
            + u.at(iv + IntVect::new(0, 1, 0))
            + u.at(iv - IntVect::new(0, 1, 0))
            + u.at(iv + IntVect::new(0, 0, 1))
            + u.at(iv - IntVect::new(0, 0, 1));
        unew.set(iv, (sum - h2 * f.at(iv)) / 6.0);
    }
}

fn residual_tile_h2(r: &mut ViewMut<'_>, u: &View<'_>, f: &View<'_>, bx: &Box3, h2: f64) {
    for iv in bx.iter() {
        let lap = u.at(iv + IntVect::new(1, 0, 0))
            + u.at(iv - IntVect::new(1, 0, 0))
            + u.at(iv + IntVect::new(0, 1, 0))
            + u.at(iv - IntVect::new(0, 1, 0))
            + u.at(iv + IntVect::new(0, 0, 1))
            + u.at(iv - IntVect::new(0, 0, 1))
            - 6.0 * u.at(iv);
        r.set(iv, f.at(iv) - lap / h2);
    }
}

/// Solve `∇²u = f` (periodic, mean-free `f` from
/// [`jacobi::manufactured_rhs`]) with `cycles` V(pre,post)-cycles whose fine
/// level runs on the device.
pub fn tida_multigrid(
    cfg: &MachineConfig,
    n: i64,
    cycles: usize,
    pre: usize,
    post: usize,
    regions: usize,
    backed: bool,
) -> MgResult {
    assert!(n % 2 == 0, "fine level must coarsen");
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let mk = || TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    let (u_arr, tmp_arr, f_arr, r_arr) = (mk(), mk(), mk(), mk());
    let f_dense = jacobi::manufactured_rhs(n);
    f_arr.from_dense(&f_dense);
    u_arr.fill_valid(|_| 0.0);

    let gpu = GpuSystem::with_backing(cfg.clone(), backed);
    let mut acc = TileAcc::new(gpu, AccOptions::paper());
    let au = acc.register(&u_arr);
    let at = acc.register(&tmp_arr);
    let af = acc.register(&f_arr);
    let ar = acc.register(&r_arr);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let h2 = 1.0;

    // `cur` tracks which of (au, at) holds the iterate.
    let mut cur = au;
    let mut other = at;
    let smooth = |acc: &mut TileAcc, cur: &mut ArrayId, other: &mut ArrayId, sweeps: usize| {
        for _ in 0..sweeps {
            acc.fill_boundary(*cur).unwrap();
            for &t in &tiles {
                let (c, _o) = (*cur, *other);
                let _ = c;
                acc.compute(
                    t,
                    &[*other],
                    &[*cur, af],
                    jacobi::cost(t.num_cells()),
                    "mg-smooth",
                    move |ws, rs, bx| sweep_tile_h2(&mut ws[0], &rs[0], &rs[1], &bx, h2),
                )
                .unwrap();
            }
            std::mem::swap(cur, other);
        }
    };

    let mut residuals = Vec::with_capacity(cycles + 1);
    let cell_count = (n * n * n) as usize;

    // Helper closures can't borrow acc twice; inline the phases.
    for cycle in 0..=cycles {
        // Residual on the device (also gives the convergence history).
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[ar],
                &[cur, af],
                jacobi::cost(t.num_cells()),
                "mg-residual",
                move |ws, rs, bx| residual_tile_h2(&mut ws[0], &rs[0], &rs[1], &bx, h2),
            )
            .unwrap();
        }
        residuals.push(acc.reduce_max_abs(ar).unwrap().unwrap_or(f64::NAN));
        if cycle == cycles {
            break;
        }

        // Pre-smoothing on the device.
        smooth(&mut acc, &mut cur, &mut other, pre);

        // Coarse-grid correction on the host: fresh residual, restrict,
        // recursive dense V-cycle, prolongate the correction into `u`.
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[ar],
                &[cur, af],
                jacobi::cost(t.num_cells()),
                "mg-residual",
                move |ws, rs, bx| residual_tile_h2(&mut ws[0], &rs[0], &rs[1], &bx, h2),
            )
            .unwrap();
        }
        acc.sync_to_host(ar).unwrap();
        acc.sync_to_host(cur).unwrap();
        // Host-side coarse solve, charged at the host's streaming rate: the
        // whole coarse hierarchy costs about one fine-grid pass.
        let coarse_cost =
            KernelCost::Bytes(cell_count as u64 * 8).duration_on_host(acc.gpu().config());
        acc.gpu_mut()
            .host_work(coarse_cost + SimTime::from_us(50), "mg-coarse");
        if backed {
            let r_dense = r_arr.to_dense().expect("backed");
            let nc = n / 2;
            let mut rc = vec![0.0; (nc * nc * nc) as usize];
            multigrid::restrict_full(&mut rc, &r_dense, nc);
            multigrid::project_mean_free(&mut rc);
            let mut ec = vec![0.0; rc.len()];
            multigrid::v_cycle_dense(&mut ec, &rc, nc, 4.0 * h2, pre, post, 4);
            let mut e_fine = vec![0.0; cell_count];
            multigrid::prolongate_add(&mut e_fine, &ec, nc);
            let cur_arr = [&u_arr, &tmp_arr][if cur == au { 0 } else { 1 }];
            let mut u_dense = cur_arr.to_dense().expect("backed");
            for (x, e) in u_dense.iter_mut().zip(&e_fine) {
                *x += e;
            }
            cur_arr.from_dense(&u_dense);
        }

        // Post-smoothing on the device (re-uploads the corrected iterate).
        smooth(&mut acc, &mut cur, &mut other, post);
    }

    acc.sync_to_host(cur).unwrap();
    let elapsed = acc.finish();
    let cur_arr = [&u_arr, &tmp_arr][if cur == au { 0 } else { 1 }];
    MgResult {
        run: RunResult {
            label: format!("TiDA-multigrid({n}^3,{regions}r)"),
            elapsed,
            bytes_h2d: acc.gpu().stats_bytes_h2d(),
            bytes_d2h: acc.gpu().stats_bytes_d2h(),
            kernels: acc.gpu().stats_kernels(),
            result: cur_arr.to_dense(),
            trace: None,
        },
        residuals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::k40m()
    }

    #[test]
    fn residuals_drop_fast_per_cycle() {
        let r = tida_multigrid(&cfg(), 16, 3, 3, 3, 4, true);
        assert_eq!(r.residuals.len(), 4);
        for w in r.residuals.windows(2) {
            assert!(
                w[1] < 0.5 * w[0],
                "each V-cycle should at least halve the residual: {:?}",
                r.residuals
            );
        }
    }

    #[test]
    fn beats_plain_jacobi_to_equal_accuracy() {
        // 2 V(3,3)-cycles vs the same number of fine sweeps of plain Jacobi.
        let mg = tida_multigrid(&cfg(), 16, 2, 3, 3, 4, true);
        let f = jacobi::manufactured_rhs(16);
        let plain = jacobi::golden_run(&f, 16, 12);
        let plain_res = jacobi::golden_residual(&plain, &f, 16);
        let mg_res = *mg.residuals.last().unwrap();
        assert!(
            mg_res < 0.5 * plain_res,
            "multigrid {mg_res:.3e} vs jacobi {plain_res:.3e}"
        );
    }

    #[test]
    fn device_residual_matches_dense_evaluation() {
        let r = tida_multigrid(&cfg(), 8, 1, 2, 2, 2, true);
        let u = r.run.result.unwrap();
        let f = jacobi::manufactured_rhs(8);
        let dense = multigrid::residual_norm(&u, &f, 8, 1.0);
        let reported = *r.residuals.last().unwrap();
        assert!(
            (dense - reported).abs() < 1e-12,
            "device-reduced residual {reported} vs dense {dense}"
        );
    }

    #[test]
    fn timing_runs_virtual_at_scale() {
        let r = tida_multigrid(&cfg(), 128, 2, 2, 2, 8, false);
        assert!(r.run.elapsed > SimTime::ZERO);
        assert!(r.residuals.iter().all(|x| x.is_nan()), "virtual: no values");
    }
}
