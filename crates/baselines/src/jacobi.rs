//! Jacobi/Poisson baselines: the paper's other structured-grid solver
//! pattern (stencil sweep + separate right-hand-side operand), as a
//! whole-array CUDA program and a TiDA-acc driver. Used by the conformance
//! suite to cross-check the execution models on a kernel whose compute
//! reads *two* arrays.

use crate::common::{MemMode, RunOpts, RunResult};
use crate::TidaOpts;
use gpu_sim::{GpuSystem, KernelLaunch, MachineConfig};
use kernels::jacobi;
use std::sync::Arc;
use tida::{
    tiles_of, Box3, Decomposition, Domain, ExchangeMode, IntVect, Layout, RegionSpec, TileArray,
    TileSpec,
};
use tida_acc::TileAcc;

/// One dense periodic Jacobi sweep: `unew = (Σ u(nbr) − f) / 6`.
fn sweep_dense(unew: &mut [f64], u: &[f64], f: &[f64], n: i64) {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    for iv in Box3::cube(n).iter() {
        let sum = u[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
            + u[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
            + u[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
            + u[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
            + u[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
            + u[l.offset(wrap(iv - IntVect::new(0, 0, 1)))];
        unew[l.offset(iv)] = (sum - f[l.offset(iv)]) / 6.0;
    }
}

/// Whole-array CUDA Jacobi: upload the right-hand side and the zero initial
/// iterate once, one fused sweep kernel per iteration (reads `u` and `f`,
/// writes `u'`), download the final iterate. Pageable or pinned host memory.
pub fn cuda_jacobi(cfg: &MachineConfig, n: i64, sweeps: usize, opts: RunOpts) -> RunResult {
    assert!(sweeps >= 1, "jacobi baseline needs at least one sweep");
    assert!(
        opts.mem != MemMode::Managed,
        "jacobi baseline models pageable/pinned memory only"
    );
    let mut gpu = GpuSystem::with_backing(cfg.clone(), opts.backed);
    gpu.set_tracing(opts.tracing);
    let len = (n * n * n) as usize;
    let cells = len as u64;
    let kind = match opts.mem {
        MemMode::Pageable => gpu_sim::HostMemKind::Pageable,
        _ => gpu_sim::HostMemKind::Pinned,
    };
    let rhs = jacobi::manufactured_rhs(n);

    let h_u = gpu.malloc_host(len, kind);
    let h_f = gpu.malloc_host(len, kind);
    gpu.host_slab(h_u).fill_with(|_| 0.0);
    {
        let f = rhs.clone();
        gpu.host_slab(h_f).fill_with(move |o| f[o]);
    }
    let d_u = gpu.malloc_device(len).expect("device alloc");
    let d_un = gpu.malloc_device(len).expect("device alloc");
    let d_f = gpu.malloc_device(len).expect("device alloc");
    let stream = gpu.create_stream();
    crate::common::h2d_retrying(&mut gpu, d_u, h_u, len, stream);
    crate::common::h2d_retrying(&mut gpu, d_f, h_f, len, stream);

    let (mut cur, mut next) = (d_u, d_un);
    for _ in 0..sweeps {
        let (u_slab, f_slab, un_slab) = (
            gpu.device_slab(cur),
            gpu.device_slab(d_f),
            gpu.device_slab(next),
        );
        gpu.launch_kernel(
            stream,
            KernelLaunch::new("jacobi", jacobi::cost(cells))
                .reads(cur.into())
                .reads(d_f.into())
                .writes(next.into())
                .exec(move || {
                    u_slab.with(|u| {
                        f_slab.with(|f| {
                            un_slab.with_mut(|un| {
                                if let (Some(u), Some(f), Some(un)) = (u, f, un) {
                                    sweep_dense(un, u, f, n);
                                }
                            })
                        })
                    });
                }),
        );
        std::mem::swap(&mut cur, &mut next);
    }
    crate::common::d2h_retrying(&mut gpu, h_u, cur, len, stream);
    gpu.stream_synchronize(stream);
    let result_slab = gpu.host_slab(h_u);

    let elapsed = gpu.finish();
    RunResult {
        label: format!("CUDA-jacobi-{}", opts.mem.label()),
        elapsed,
        bytes_h2d: gpu.stats_bytes_h2d(),
        bytes_d2h: gpu.stats_bytes_d2h(),
        kernels: gpu.stats_kernels(),
        result: result_slab.snapshot(),
        trace: if opts.tracing {
            Some(gpu.trace())
        } else {
            None
        },
    }
}

/// TiDA-acc Jacobi driver: the multi-operand `compute` path (`u'` from `u`
/// and `f`), ghost exchange on the iterate only.
pub fn tida_jacobi(cfg: &MachineConfig, n: i64, sweeps: usize, opts: &TidaOpts) -> RunResult {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(opts.regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, opts.backed);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, opts.backed);
    let rhs = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, opts.backed);
    ua.fill_valid(|_| 0.0);
    if opts.backed {
        rhs.from_dense(&jacobi::manufactured_rhs(n));
    }

    let mut gpu = GpuSystem::with_backing(cfg.clone(), opts.backed);
    gpu.set_tracing(opts.tracing);
    let mut acc = TileAcc::new(gpu, opts.acc.clone());
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let f = acc.register(&rhs);

    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..sweeps {
        if opts.auto_step {
            acc.begin_step().unwrap();
        }
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[dst],
                &[src, f],
                jacobi::cost(t.num_cells()),
                "jacobi",
                |ws, rs, bx| jacobi::sweep_tile(&mut ws[0], &rs[0], &rs[1], &bx),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let elapsed = acc.finish();
    let final_array = if src == a { &ua } else { &ub };
    RunResult {
        label: format!("TiDA-jacobi({}r)", opts.regions),
        elapsed,
        bytes_h2d: acc.gpu().stats_bytes_h2d(),
        bytes_d2h: acc.gpu().stats_bytes_d2h(),
        kernels: acc.gpu().stats_kernels(),
        result: final_array.to_dense(),
        trace: if opts.tracing {
            Some(acc.gpu().trace())
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::k40m()
    }

    #[test]
    fn cuda_jacobi_matches_golden() {
        let (n, sweeps) = (8, 3);
        let r = cuda_jacobi(&cfg(), n, sweeps, RunOpts::validated(MemMode::Pinned));
        let golden = jacobi::golden_run(&jacobi::manufactured_rhs(n), n, sweeps);
        assert_eq!(r.result.unwrap(), golden);
    }

    #[test]
    fn tida_jacobi_matches_golden() {
        let (n, sweeps) = (8, 3);
        let r = tida_jacobi(&cfg(), n, sweeps, &TidaOpts::validated(4));
        let golden = jacobi::golden_run(&jacobi::manufactured_rhs(n), n, sweeps);
        assert_eq!(r.result.unwrap(), golden);
    }

    #[test]
    fn tida_jacobi_survives_staging() {
        let (n, sweeps) = (8, 2);
        let r = tida_jacobi(&cfg(), n, sweeps, &TidaOpts::validated(4).with_max_slots(3));
        let golden = jacobi::golden_run(&jacobi::manufactured_rhs(n), n, sweeps);
        assert_eq!(r.result.unwrap(), golden);
    }
}
