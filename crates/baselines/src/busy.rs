//! Whole-array compute-intensive-kernel baselines (§VI-B / Fig. 6).
//!
//! Same structure as the heat baselines (one H2D, `steps` kernels, one D2H)
//! without ghost exchange. The variants differ by memory management and by
//! math implementation:
//!
//! * `CUDA` / `CUDA pinned` — `math.h` double-precision sin/cos/sqrt;
//! * `CUDA pinned fast math` — `-use_fast_math`;
//! * `OpenACC` — PGI-generated math (faster than CUDA's `math.h`, as the
//!   paper observes), untuned geometry.

use crate::common::{MemMode, RunOpts, RunResult};
use gpu_sim::{GpuSystem, KernelLaunch, MachineConfig};
use kernels::busy::{self, MathImpl};
use memslab::Slab;

/// CUDA implementation with the given memory mode and math library.
pub fn cuda_busy(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    iters: u32,
    math: MathImpl,
    opts: RunOpts,
) -> RunResult {
    let math_tag = match math {
        MathImpl::CudaLibm => "",
        MathImpl::FastMath => "-fastmath",
        MathImpl::PgiLibm => "-pgimath",
    };
    run(
        cfg,
        n,
        steps,
        iters,
        math,
        1.0,
        opts,
        format!("CUDA-{}{}", opts.mem.label(), math_tag),
    )
}

/// OpenACC implementation: PGI math, untuned launch geometry.
pub fn openacc_busy(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    iters: u32,
    opts: RunOpts,
) -> RunResult {
    run(
        cfg,
        n,
        steps,
        iters,
        MathImpl::PgiLibm,
        0.95,
        opts,
        format!("OpenACC-{}", opts.mem.label()),
    )
}

/// The initial condition shared by every busy-kernel run.
pub fn busy_init() -> impl Fn(tida::IntVect) -> f64 {
    kernels::init::gaussian(64)
}

fn fill_dense(slab: &Slab, n: i64) {
    let l = tida::Layout::new(tida::Box3::cube(n));
    let f = busy_init();
    slab.fill_with(|o| f(l.cell_at(o)));
}

#[allow(clippy::too_many_arguments)]
fn run(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    iters: u32,
    math: MathImpl,
    efficiency: f64,
    opts: RunOpts,
    label: String,
) -> RunResult {
    let mut gpu = GpuSystem::with_backing(cfg.clone(), opts.backed);
    gpu.set_tracing(opts.tracing);
    let len = (n * n * n) as usize;
    let cells = len as u64;

    let result_slab: Slab = match opts.mem {
        MemMode::Managed => {
            let u = gpu.malloc_managed(len).expect("managed alloc");
            fill_dense(&gpu.managed_slab(u), n);
            let stream = gpu.create_stream();
            for _ in 0..steps {
                let slab = gpu.managed_slab(u);
                gpu.launch_kernel(
                    stream,
                    KernelLaunch::new("busy", busy::cost(cells, iters, math))
                        .efficiency(efficiency)
                        .reads(u.into())
                        .writes(u.into())
                        .exec(move || {
                            slab.with_mut(|d| {
                                if let Some(d) = d {
                                    busy::golden(d, iters);
                                }
                            });
                        }),
                );
            }
            gpu.managed_host_access(u);
            gpu.managed_slab(u)
        }
        MemMode::Pageable | MemMode::Pinned => {
            let kind = match opts.mem {
                MemMode::Pageable => gpu_sim::HostMemKind::Pageable,
                _ => gpu_sim::HostMemKind::Pinned,
            };
            let h = gpu.malloc_host(len, kind);
            fill_dense(&gpu.host_slab(h), n);
            let d = gpu.malloc_device(len).expect("device alloc");
            let stream = gpu.create_stream();
            crate::common::h2d_retrying(&mut gpu, d, h, len, stream);
            for _ in 0..steps {
                let slab = gpu.device_slab(d);
                gpu.launch_kernel(
                    stream,
                    KernelLaunch::new("busy", busy::cost(cells, iters, math))
                        .efficiency(efficiency)
                        .reads(d.into())
                        .writes(d.into())
                        .exec(move || {
                            slab.with_mut(|data| {
                                if let Some(data) = data {
                                    busy::golden(data, iters);
                                }
                            });
                        }),
                );
            }
            crate::common::d2h_retrying(&mut gpu, h, d, len, stream);
            gpu.stream_synchronize(stream);
            gpu.host_slab(h)
        }
    };

    let elapsed = gpu.finish();
    RunResult {
        label,
        elapsed,
        bytes_h2d: gpu.stats_bytes_h2d(),
        bytes_d2h: gpu.stats_bytes_d2h(),
        kernels: gpu.stats_kernels(),
        result: result_slab.snapshot(),
        trace: if opts.tracing {
            Some(gpu.trace())
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::k40m()
    }

    #[test]
    fn cuda_busy_matches_golden() {
        let n = 8;
        let (steps, iters) = (2, 5);
        let r = cuda_busy(
            &cfg(),
            n,
            steps,
            iters,
            MathImpl::CudaLibm,
            RunOpts::validated(MemMode::Pinned),
        );
        let l = tida::Layout::new(tida::Box3::cube(n));
        let f = busy_init();
        let mut golden: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        for _ in 0..steps {
            busy::golden(&mut golden, iters);
        }
        assert_eq!(r.result.unwrap(), golden);
    }

    #[test]
    fn fig6_ordering_cuda_slowest_fastmath_fastest() {
        let n = 32;
        let (steps, iters) = (10, busy::DEFAULT_KERNEL_ITERATION);
        let t_cuda = cuda_busy(
            &cfg(),
            n,
            steps,
            iters,
            MathImpl::CudaLibm,
            RunOpts::timing(MemMode::Pinned),
        )
        .elapsed;
        let t_fast = cuda_busy(
            &cfg(),
            n,
            steps,
            iters,
            MathImpl::FastMath,
            RunOpts::timing(MemMode::Pinned),
        )
        .elapsed;
        let t_acc =
            openacc_busy(&cfg(), n, steps, iters, RunOpts::timing(MemMode::Pageable)).elapsed;
        assert!(t_cuda > t_acc, "CUDA libm slower than OpenACC/PGI math");
        assert!(t_cuda > t_fast, "fast math beats libm");
    }

    #[test]
    fn managed_variant_runs_and_matches() {
        let n = 6;
        let r = cuda_busy(
            &cfg(),
            n,
            1,
            3,
            MathImpl::CudaLibm,
            RunOpts::validated(MemMode::Managed),
        );
        let l = tida::Layout::new(tida::Box3::cube(n));
        let f = busy_init();
        let mut golden: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        busy::golden(&mut golden, 3);
        assert_eq!(r.result.unwrap(), golden);
    }
}
