//! The multi-tenant serving runtime.
//!
//! One [`ServingRuntime`] owns one simulated platform ([`GpuSystem`]) and
//! serves jobs from many tenants concurrently:
//!
//! * **Admission** — jobs pass the bounded, quota-enforcing
//!   [`crate::queue::AdmissionQueue`] or are shed with a typed error
//!   before any device resource is touched.
//! * **Fair-share batching** — up to `max_active` jobs hold device slots
//!   at once, each with its own stream and *disjoint* buffers. The pump
//!   loop interleaves their asynchronous submissions weighted
//!   round-robin, so tenant A's H2D runs on the copy engine while tenant
//!   B's kernel holds the compute engine — the paper's overlap argument
//!   applied across tenants instead of across regions.
//! * **Preemption** — when the queue holds a strictly higher-priority job
//!   and every slot is taken, the lowest-priority active job is evicted
//!   at its next step boundary: its regions are drained, snapshotted
//!   through the TACK checkpoint codec, and the job is requeued carrying
//!   the blob; on re-dispatch it resumes from the saved step,
//!   bit-identical to an uninterrupted run.
//! * **Fault isolation** — each job's buffers belong to its tenant alone
//!   (asserted by [`GpuSystem::cross_tenant_touches`]), injected faults
//!   are absorbed by per-transfer retries, job-level resubmission, and
//!   salvage drains, and a platform crash is survived by rebuilding the
//!   system and restarting every in-flight job from its last durable
//!   state (checkpoint or seed) — other tenants' results stay
//!   bit-identical to solo runs throughout.

use std::collections::HashMap;

use gpu_sim::{
    BufKey, DeviceBuffer, FaultPlan, FaultStats, GpuSystem, HazardCounters, HostBuffer,
    HostMemKind, KernelCost, KernelLaunch, MachineConfig, SimTime, StreamId,
};
use memslab::{fnv1a64_f64s, Slab};
use tida_acc::{AccError, Checkpoint, IntegrityKind, RetryPolicy};

use crate::job::{JobId, JobResult, JobSpec};
use crate::queue::{AdmissionQueue, QueuedJob};

/// Configuration of a [`ServingRuntime`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    pub machine: MachineConfig,
    /// Real (backed) data. Timing-only runs (`false`) keep the identical
    /// schedule but report the host-computed golden digest, since no
    /// bytes exist to hash.
    pub backed: bool,
    /// Global admission-queue depth; beyond it jobs are shed.
    pub max_queue_depth: usize,
    /// Per-tenant cap on queued jobs.
    pub per_tenant_quota: usize,
    /// Device slots: jobs resident and interleaving at once.
    pub max_active: usize,
    /// Devices in the platform. Slot `s` lives on device `s % num_devices`,
    /// so a multi-device runtime spreads concurrent jobs across devices —
    /// and a device death takes out only the slots mapped to it.
    pub num_devices: usize,
    /// Per-transfer retry budget inside a running job.
    pub transfer_retry: RetryPolicy,
    /// Job-level resubmission budget after a device-path failure.
    pub job_retry: RetryPolicy,
    /// Seeded fault schedule installed into the platform.
    pub fault_plan: FaultPlan,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            machine: MachineConfig::k40m(),
            backed: true,
            max_queue_depth: 4096,
            per_tenant_quota: 2048,
            max_active: 4,
            num_devices: 1,
            transfer_retry: RetryPolicy::default(),
            job_retry: RetryPolicy::new(2, SimTime::from_us(200)),
            fault_plan: FaultPlan::none(),
        }
    }
}

/// Per-tenant service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs offered to [`ServingRuntime::submit`].
    pub submitted: u64,
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Jobs shed because the global queue was full.
    pub shed_queue_full: u64,
    /// Jobs shed at the tenant's quota.
    pub shed_quota: u64,
    /// Jobs finished with a digest.
    pub completed: u64,
    /// Jobs finished with a typed error (excluding deadline misses).
    pub failed: u64,
    /// Jobs that missed their deadline (queued or running).
    pub deadline_missed: u64,
    /// Job-level resubmissions performed on the tenant's behalf.
    pub retries: u64,
    /// Jobs drained off a lost device and rescheduled onto survivors.
    /// A device loss is the platform's fault, not the job's, so these do
    /// not consume the job-level retry budget.
    pub evacuated: u64,
    /// Evictions of the tenant's jobs by higher-priority work.
    pub preemptions: u64,
}

/// Where a running job is in its load → compute → drain pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Next region to upload.
    Load { next: usize },
    /// Kernels submitted so far == `step`.
    Compute,
    /// Next region to drain.
    Drain { next: usize },
    /// Everything submitted; sync, verify, digest.
    Finalize,
}

struct ActiveJob {
    id: JobId,
    spec: JobSpec,
    submitted: SimTime,
    started: SimTime,
    retries: u32,
    preemptions: u32,
    slot: usize,
    host: Vec<HostBuffer>,
    dev: Vec<DeviceBuffer>,
    host_slabs: Vec<Slab>,
    /// Device steps already submitted (== completed once synced).
    step: u64,
    phase: Phase,
    /// TACK blob of the last durable snapshot (crash restart point).
    checkpoint: Option<Vec<u8>>,
    preempt_requested: bool,
}

enum Pump {
    /// Submitted work; call again later.
    Progress,
    /// Job left the runtime with this outcome.
    Done(Result<u64, AccError>),
    /// Job was evicted and requeued (entry already back in the queue).
    Preempted,
    /// The platform died mid-pump; the job is still active.
    Crashed,
    /// The job's device died mid-pump (the platform survives); the job is
    /// still active and must be evacuated onto a surviving device.
    Lost { device: usize },
}

/// See the module docs.
pub struct ServingRuntime {
    cfg: ServingConfig,
    gpu: GpuSystem,
    queue: AdmissionQueue,
    active: Vec<ActiveJob>,
    /// Lazily created stream per slot; slots are reused across jobs.
    streams: Vec<Option<StreamId>>,
    slot_busy: Vec<bool>,
    /// Slots retired because their device died. Never refilled until a
    /// platform rebuild brings fresh hardware.
    slot_dead: Vec<bool>,
    results: Vec<JobResult>,
    stats: HashMap<u32, TenantStats>,
    weights: HashMap<u32, u32>,
    rr_cursor: usize,
    /// Virtual time consumed by platforms already discarded after a crash;
    /// `now() = clock_base + gpu.host_now()` stays monotone across rebuilds.
    clock_base: SimTime,
    crashes_survived: u64,
    /// Fault counters accumulated from crashed platforms, folded into
    /// [`ServingRuntime::fault_stats`].
    lost_fault_events: u64,
}

impl ServingRuntime {
    pub fn new(cfg: ServingConfig) -> Self {
        let mut gpu = GpuSystem::multi(cfg.machine.clone(), cfg.num_devices.max(1), cfg.backed);
        gpu.set_fault_plan(cfg.fault_plan.clone());
        let queue = AdmissionQueue::new(cfg.max_queue_depth, cfg.per_tenant_quota);
        let max_active = cfg.max_active.max(1);
        ServingRuntime {
            gpu,
            queue,
            active: Vec::new(),
            streams: vec![None; max_active],
            slot_busy: vec![false; max_active],
            slot_dead: vec![false; max_active],
            results: Vec::new(),
            stats: HashMap::new(),
            weights: HashMap::new(),
            rr_cursor: 0,
            clock_base: SimTime::ZERO,
            crashes_survived: 0,
            lost_fault_events: 0,
            cfg,
        }
    }

    /// Fair-share weight of a tenant (default 1): how many pump actions it
    /// receives per scheduler rotation.
    pub fn set_weight(&mut self, tenant: u32, weight: u32) {
        self.weights.insert(tenant, weight.max(1));
    }

    /// Monotone virtual time, continuous across crash rebuilds.
    pub fn now(&self) -> SimTime {
        self.clock_base + self.gpu.host_now()
    }

    /// Offer a job. Shedding verdicts come back immediately; accepted jobs
    /// produce a [`JobResult`] once [`ServingRuntime::run_until_idle`]
    /// processes them.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AccError> {
        let tenant = spec.tenant;
        let st = self.stats.entry(tenant).or_default();
        st.submitted += 1;
        let now = self.now();
        match self.queue.admit(spec, now) {
            Ok(id) => {
                self.stats.entry(tenant).or_default().admitted += 1;
                Ok(id)
            }
            Err(e) => {
                let st = self.stats.entry(tenant).or_default();
                match e {
                    AccError::QueueFull { .. } => st.shed_queue_full += 1,
                    AccError::QuotaExceeded { .. } => st.shed_quota += 1,
                    _ => {}
                }
                Err(e)
            }
        }
    }

    /// Drive the platform until every admitted job has a result.
    pub fn run_until_idle(&mut self) {
        while self.round() {}
    }

    /// Drive at most `n` scheduler rounds (dispatch, preemption checks,
    /// one pump rotation each); returns `false` once the runtime is idle.
    /// Callers use this to interleave submissions with service — an
    /// open-loop load generator, or a client whose high-priority job must
    /// arrive while lower-priority work already holds the device.
    pub fn run_rounds(&mut self, n: usize) -> bool {
        for _ in 0..n {
            if !self.round() {
                return false;
            }
        }
        true
    }

    /// One scheduler round; `false` means nothing is queued or active.
    fn round(&mut self) -> bool {
        if self.gpu.crashed() {
            self.recover_from_crash();
        }
        self.evacuate_lost_devices();
        let now = self.now();
        for e in self.queue.expire_deadlines(now) {
            self.finish_entry_expired(e, now);
        }
        if self.live_slot_count() == 0 {
            // Every device is gone: nothing can ever run again. Fail the
            // backlog with a typed verdict instead of idling forever —
            // an admitted job is never silently dropped.
            let device = self.gpu.lost_devices().first().copied().unwrap_or(0);
            for e in self.queue.drain_all() {
                self.record_result(
                    e.id,
                    e.spec.tenant,
                    Err(AccError::DeviceLost { device }),
                    e.submitted,
                    None,
                    e.retries,
                    e.preemptions,
                );
            }
            return false;
        }
        self.fill_slots();
        self.request_preemptions();
        if self.active.is_empty() {
            if self.queue.is_empty() {
                return false;
            }
            // Everything admitted is in retry backoff: idle the host
            // forward to the earliest eligible entry. (A non-empty queue
            // always has an earliest entry; treat the impossible case as
            // idle rather than panicking.)
            let Some(ready) = self.queue.earliest_ready() else {
                return false;
            };
            let now = self.now();
            if ready > now {
                self.gpu.host_work(ready - now, "serving-idle");
            }
            return true;
        }
        self.pump_rotation();
        true
    }

    /// Results accumulated so far (completed and failed jobs, in
    /// completion order).
    pub fn results(&self) -> &[JobResult] {
        &self.results
    }

    pub fn take_results(&mut self) -> Vec<JobResult> {
        std::mem::take(&mut self.results)
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    pub fn tenant_stats(&self, tenant: u32) -> TenantStats {
        self.stats.get(&tenant).copied().unwrap_or_default()
    }

    /// Cross-tenant buffer touches observed by the platform — the
    /// isolation invariant; a correctly partitioned runtime holds this at
    /// zero (see [`GpuSystem::cross_tenant_touches`]).
    pub fn cross_tenant_touches(&self) -> u64 {
        self.gpu.cross_tenant_touches()
    }

    /// Scheduler-level hazard counters of the current platform.
    pub fn hazard_counters(&self) -> HazardCounters {
        self.gpu.hazard_counters()
    }

    /// Injected-fault counters of the current platform (post-crash
    /// platforms start fresh; [`ServingRuntime::crashes_survived`] plus
    /// this tells the whole story).
    pub fn fault_stats(&self) -> FaultStats {
        self.gpu.fault_stats()
    }

    /// Platform crashes absorbed by rebuild-and-restart.
    pub fn crashes_survived(&self) -> u64 {
        self.crashes_survived
    }

    /// Devices of the current platform the fault plan has killed.
    pub fn lost_devices(&self) -> Vec<usize> {
        self.gpu.lost_devices()
    }

    /// Injected fault events across all platforms this runtime has owned,
    /// including ones discarded after a crash.
    pub fn total_fault_events(&self) -> u64 {
        self.lost_fault_events + self.gpu.fault_stats().events()
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn weight(&self, tenant: u32) -> u32 {
        self.weights.get(&tenant).copied().unwrap_or(1)
    }

    /// Device a slot's stream and buffers live on.
    fn slot_device(&self, slot: usize) -> usize {
        slot % self.cfg.num_devices.max(1)
    }

    /// Slots still backed by live hardware.
    fn live_slot_count(&self) -> usize {
        self.slot_dead.iter().filter(|d| !**d).count()
    }

    /// First slot that is neither occupied nor retired by a device loss.
    fn live_free_slot(&self) -> Option<usize> {
        (0..self.slot_busy.len()).find(|&s| !self.slot_busy[s] && !self.slot_dead[s])
    }

    fn fill_slots(&mut self) {
        // A dead device retires its slots, so free capacity is the count
        // of live free slots — `active < max_active` alone no longer
        // implies a usable slot exists.
        while let Some(slot) = self.live_free_slot() {
            let now = self.now();
            let Some(entry) = self.queue.pop_dispatchable(now) else {
                break;
            };
            if let Err(entry) = self.activate(entry, slot) {
                // Device allocation refused (injected cudaMalloc fault):
                // treat as a job-level device failure — retry or fail.
                let bytes = (entry.spec.region_len * std::mem::size_of::<f64>()) as u64;
                self.retry_or_fail(entry, AccError::DeviceAlloc { bytes }, None);
            }
        }
    }

    /// Bring a queued entry onto `slot`'s device: fresh host slabs seeded
    /// from the spec or its checkpoint, device buffers, a slot stream.
    fn activate(&mut self, entry: QueuedJob, slot: usize) -> Result<(), QueuedJob> {
        let device = self.slot_device(slot);
        let spec = entry.spec.clone();
        // Resume point: a preempted job restarts at its checkpointed step
        // with the checkpointed bytes; a fresh (or retried) job restarts
        // from the seed. A blob that fails validation is treated as no
        // durable state — restart from the seed, which is always correct,
        // rather than panicking the runtime over one tenant's snapshot.
        let (start_step, region_data): (u64, Option<Vec<Vec<f64>>>) = match &entry.resume {
            Some(blob) => match Checkpoint::decode(blob) {
                Ok(ck) => (ck.step, Some(ck.region_data()[0].clone())),
                Err(_) => (0, None),
            },
            None => (0, None),
        };
        self.gpu.set_tenant(Some(spec.tenant));
        let mut host = Vec::with_capacity(spec.regions);
        let mut dev = Vec::with_capacity(spec.regions);
        let mut host_slabs = Vec::with_capacity(spec.regions);
        for r in 0..spec.regions {
            let slab = Slab::new(spec.region_len, self.cfg.backed);
            slab.with_mut(|data| {
                if let Some(data) = data {
                    match &region_data {
                        Some(rd) => data.copy_from_slice(&rd[r]),
                        None => spec.seed_region(r, data),
                    }
                }
            });
            match self.gpu.malloc_device_on(device, spec.region_len) {
                Ok(d) => dev.push(d),
                Err(_) => {
                    for d in dev {
                        self.gpu.free_device(d);
                    }
                    self.gpu.set_tenant(None);
                    return Err(entry);
                }
            }
            host.push(self.gpu.adopt_host_slab(slab.clone(), HostMemKind::Pinned));
            host_slabs.push(slab);
        }
        if self.streams[slot].is_none() {
            self.streams[slot] = Some(self.gpu.create_stream_on(device));
        }
        self.gpu.set_tenant(None);
        self.slot_busy[slot] = true;
        let started = self.now();
        self.active.push(ActiveJob {
            id: entry.id,
            spec,
            submitted: entry.submitted,
            started,
            retries: entry.retries,
            preemptions: entry.preemptions,
            slot,
            host,
            dev,
            host_slabs,
            step: start_step,
            phase: Phase::Load { next: 0 },
            checkpoint: entry.resume,
            preempt_requested: false,
        });
        Ok(())
    }

    /// Flag the lowest-priority active job for eviction when the queue
    /// holds strictly higher-priority work and every slot is taken. Jobs
    /// already draining are left to finish — their slot frees shortly.
    fn request_preemptions(&mut self) {
        if self.active.len() < self.cfg.max_active.max(1) {
            return;
        }
        let now = self.now();
        let Some(best_queued) = self.queue.best_priority(now) else {
            return;
        };
        let victim = self
            .active
            .iter_mut()
            .filter(|j| {
                !j.preempt_requested && matches!(j.phase, Phase::Load { .. } | Phase::Compute)
            })
            .min_by_key(|j| (j.spec.priority, std::cmp::Reverse(j.started)));
        if let Some(v) = victim {
            if v.spec.priority < best_queued {
                v.preempt_requested = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Pumping
    // ------------------------------------------------------------------

    /// One weighted round-robin rotation over the active set. Each job
    /// receives `weight(tenant)` pump actions; submissions from different
    /// tenants therefore interleave into different streams, which is what
    /// overlaps one tenant's transfers with another's compute.
    fn pump_rotation(&mut self) {
        let mut i = 0;
        let len = self.active.len();
        self.rr_cursor %= len.max(1);
        let mut order: Vec<usize> = (0..len).collect();
        order.rotate_left(self.rr_cursor);
        self.rr_cursor = (self.rr_cursor + 1) % len.max(1);
        // Indices shift as jobs retire, so walk by job id.
        let ids: Vec<JobId> = order.into_iter().map(|k| self.active[k].id).collect();
        while i < ids.len() {
            let id = ids[i];
            i += 1;
            let Some(idx) = self.active.iter().position(|j| j.id == id) else {
                continue;
            };
            let weight = self.weight(self.active[idx].spec.tenant);
            for _ in 0..weight {
                let Some(idx) = self.active.iter().position(|j| j.id == id) else {
                    break;
                };
                match self.pump_job(idx) {
                    Pump::Progress => {}
                    Pump::Preempted => break,
                    Pump::Done(outcome) => {
                        let job = self.active.remove(idx);
                        self.finish_active(job, outcome);
                        break;
                    }
                    Pump::Crashed => return,
                    Pump::Lost { device } => {
                        // Retire every slot on the dead device and requeue
                        // its jobs (this one included) from their durable
                        // state. Survivor slots keep pumping: the walk is
                        // by job id, so evacuated jobs are skipped.
                        self.retire_device(device);
                        break;
                    }
                }
            }
        }
    }

    /// Advance one job by one pipeline action.
    fn pump_job(&mut self, idx: usize) -> Pump {
        if self.gpu.crashed() {
            return Pump::Crashed;
        }
        let device = self.slot_device(self.active[idx].slot);
        if self.gpu.device_lost(device) {
            // The slot's device died between pumps (timed death, or a
            // sibling slot's transfer tripped the trigger): evacuate
            // instead of submitting to dead hardware.
            return Pump::Lost { device };
        }
        if self.active[idx].preempt_requested {
            return self.preempt(idx);
        }
        let tenant = self.active[idx].spec.tenant;
        self.gpu.set_tenant(Some(tenant));
        let out = self.pump_tagged(idx);
        self.gpu.set_tenant(None);
        out
    }

    fn pump_tagged(&mut self, idx: usize) -> Pump {
        let device = self.slot_device(self.active[idx].slot);
        // A slot's stream disappears only when the slot was retired by a
        // device loss; surface the loss instead of panicking.
        let Some(stream) = self.streams[self.active[idx].slot] else {
            return Pump::Lost { device };
        };
        let (regions, len) = {
            let j = &self.active[idx];
            (j.spec.regions, j.spec.region_len)
        };
        match self.active[idx].phase {
            Phase::Load { next } => {
                let (h, d) = (self.active[idx].host[next], self.active[idx].dev[next]);
                match self.transfer_with_retry(next, device, |g| {
                    g.memcpy_h2d_async(d, 0, h, 0, len, stream)
                }) {
                    Ok(()) => {}
                    Err(e) => return e,
                }
                self.active[idx].phase = if next + 1 < regions {
                    Phase::Load { next: next + 1 }
                } else {
                    Phase::Compute
                };
                Pump::Progress
            }
            Phase::Compute => {
                let j = &self.active[idx];
                if j.step >= j.spec.steps {
                    self.active[idx].phase = Phase::Drain { next: 0 };
                    return Pump::Progress;
                }
                let spec = j.spec.clone();
                let slabs: Vec<Slab> = j.dev.iter().map(|d| self.gpu.device_slab(*d)).collect();
                let mut launch = KernelLaunch::new("serving-step", KernelCost::Bytes(spec.bytes()))
                    .exec_if(self.cfg.backed, move || {
                        for slab in &slabs {
                            slab.with_mut(|data| {
                                if let Some(data) = data {
                                    for x in data.iter_mut() {
                                        *x = spec.step_value(*x);
                                    }
                                }
                            });
                        }
                    });
                for d in &self.active[idx].dev {
                    let key: BufKey = (*d).into();
                    launch = launch.reads(key).writes(key);
                }
                self.gpu.launch_kernel(stream, launch);
                if self.gpu.crashed() {
                    return Pump::Crashed;
                }
                if self.gpu.device_lost(device) {
                    // A timed death landed on the kernel submission: the
                    // step did not execute, so don't count it — the job
                    // recomputes it after evacuation.
                    return Pump::Lost { device };
                }
                self.active[idx].step += 1;
                Pump::Progress
            }
            Phase::Drain { next } => {
                let (h, d) = (self.active[idx].host[next], self.active[idx].dev[next]);
                match self.transfer_with_retry(next, device, |g| {
                    g.memcpy_d2h_async(h, 0, d, 0, len, stream)
                }) {
                    Ok(()) => {}
                    Err(Pump::Done(Err(AccError::TransferExhausted { .. }))) => {
                        // The D2H lane is dead: rescue the region over the
                        // fault-exempt maintenance path instead of losing
                        // the computed bytes.
                        self.gpu.memcpy_d2h_salvage(h, 0, d, 0, len, stream);
                    }
                    Err(e) => return e,
                }
                self.active[idx].phase = if next + 1 < regions {
                    Phase::Drain { next: next + 1 }
                } else {
                    Phase::Finalize
                };
                Pump::Progress
            }
            Phase::Finalize => self.finalize(idx, stream),
        }
    }

    /// Enqueue one transfer, retrying faulted attempts under the
    /// per-transfer policy (fault verdicts land at enqueue time, so no
    /// sync is needed between attempts). A fault caused by the device
    /// itself dying is not retryable: it surfaces as [`Pump::Lost`] so
    /// the job evacuates without burning its transfer budget.
    fn transfer_with_retry(
        &mut self,
        region: usize,
        device: usize,
        mut submit: impl FnMut(&mut GpuSystem) -> gpu_sim::OpId,
    ) -> Result<(), Pump> {
        let mut attempt = 0u32;
        loop {
            let op = submit(&mut self.gpu);
            if self.gpu.crashed() {
                return Err(Pump::Crashed);
            }
            if !self.gpu.op_faulted(op) {
                return Ok(());
            }
            if self.gpu.device_lost(device) {
                return Err(Pump::Lost { device });
            }
            if self.cfg.transfer_retry.exhausted(attempt) {
                return Err(Pump::Done(Err(AccError::TransferExhausted { region })));
            }
            self.gpu
                .backoff_work(self.cfg.transfer_retry.backoff(attempt), "serving-retry");
            attempt += 1;
        }
    }

    /// Sync the job's stream, verify its host mirrors, digest, release.
    fn finalize(&mut self, idx: usize, stream: StreamId) -> Pump {
        self.gpu.stream_synchronize(stream);
        if self.gpu.crashed() {
            return Pump::Crashed;
        }
        let j = &self.active[idx];
        for (r, h) in j.host.iter().enumerate() {
            if self.gpu.host_poisoned(*h) {
                return Pump::Done(Err(AccError::Integrity {
                    region: r,
                    kind: IntegrityKind::HostMirror,
                }));
            }
        }
        let digest = if self.cfg.backed {
            JobSpec::combine_digests(
                j.host_slabs
                    .iter()
                    .map(|s| s.with(|data| fnv1a64_f64s(data.expect("backed slab has data")))),
            )
        } else {
            // Timing-only platform: no bytes moved, report the reference.
            j.spec.golden_digest()
        };
        Pump::Done(Ok(digest))
    }

    // ------------------------------------------------------------------
    // Preemption
    // ------------------------------------------------------------------

    /// Evict a job at its current step boundary: drain its regions,
    /// snapshot through the TACK codec, free its slot, requeue.
    fn preempt(&mut self, idx: usize) -> Pump {
        let tenant = self.active[idx].spec.tenant;
        let device = self.slot_device(self.active[idx].slot);
        // As in pump_tagged: a missing stream means the slot was retired
        // by a device loss — evacuate rather than panic.
        let Some(stream) = self.streams[self.active[idx].slot] else {
            return Pump::Lost { device };
        };
        self.gpu.set_tenant(Some(tenant));
        // Make every submitted kernel's effect real before reading bytes.
        self.gpu.stream_synchronize(stream);
        if self.gpu.crashed() {
            self.gpu.set_tenant(None);
            return Pump::Crashed;
        }
        let len = self.active[idx].spec.region_len;
        let regions = self.active[idx].spec.regions;
        // A job still loading has nothing new on the device; one that has
        // computed must drain. Either way the host slabs end up holding
        // the state at step `job.step`.
        if matches!(self.active[idx].phase, Phase::Compute | Phase::Drain { .. }) {
            for r in 0..regions {
                let (h, d) = (self.active[idx].host[r], self.active[idx].dev[r]);
                match self
                    .transfer_with_retry(r, device, |g| g.memcpy_d2h_async(h, 0, d, 0, len, stream))
                {
                    Ok(()) => {}
                    Err(Pump::Done(Err(AccError::TransferExhausted { .. }))) => {
                        self.gpu.memcpy_d2h_salvage(h, 0, d, 0, len, stream);
                    }
                    Err(e) => {
                        self.gpu.set_tenant(None);
                        return e;
                    }
                }
            }
            self.gpu.stream_synchronize(stream);
            if self.gpu.crashed() {
                self.gpu.set_tenant(None);
                return Pump::Crashed;
            }
        }
        self.gpu.set_tenant(None);
        let mut job = self.active.remove(idx);
        let blob = if self.cfg.backed {
            let data: Vec<Vec<f64>> = job
                .host_slabs
                .iter()
                .map(|s| s.with(|d| d.expect("backed slab has data").to_vec()))
                .collect();
            Some(Checkpoint::from_region_data(job.step, vec![data]).encode())
        } else {
            // Timing-only: the "state" is just the step cursor.
            Some(Checkpoint::from_region_data(job.step, vec![vec![Vec::new(); regions]]).encode())
        };
        self.release_device(&mut job);
        self.stats.entry(job.spec.tenant).or_default().preemptions += 1;
        let now = self.now();
        self.queue.requeue(QueuedJob {
            id: job.id,
            spec: job.spec,
            submitted: job.submitted,
            not_before: now,
            retries: job.retries,
            preemptions: job.preemptions + 1,
            resume: blob,
        });
        Pump::Preempted
    }

    // ------------------------------------------------------------------
    // Completion, failure, crash recovery
    // ------------------------------------------------------------------

    /// Sweep for devices the fault plan has killed since the last round
    /// and retire them. Idempotent: already-retired devices have no live
    /// slots or active jobs left to touch.
    fn evacuate_lost_devices(&mut self) {
        for d in self.gpu.lost_devices() {
            self.retire_device(d);
        }
    }

    /// A device died: retire its slots permanently (hardware gone until a
    /// platform rebuild) and drain-reschedule every job mapped to it.
    fn retire_device(&mut self, device: usize) {
        for s in 0..self.slot_dead.len() {
            if self.slot_device(s) == device {
                self.slot_dead[s] = true;
                self.streams[s] = None;
            }
        }
        let mut i = 0;
        while i < self.active.len() {
            if self.slot_device(self.active[i].slot) == device {
                let job = self.active.remove(i);
                self.evacuate_job(job);
            } else {
                i += 1;
            }
        }
    }

    /// Requeue a job whose device died, preserving its identity, submit
    /// time, and retry budget. The job's device buffers died with the
    /// hardware (nothing to free); its durable state is the last
    /// checkpoint blob or the seed, exactly as in crash recovery.
    fn evacuate_job(&mut self, mut job: ActiveJob) {
        job.dev.clear();
        self.slot_busy[job.slot] = false;
        self.stats.entry(job.spec.tenant).or_default().evacuated += 1;
        let now = self.now();
        self.queue.requeue(QueuedJob {
            id: job.id,
            spec: job.spec,
            submitted: job.submitted,
            not_before: now,
            retries: job.retries,
            preemptions: job.preemptions,
            resume: job.checkpoint,
        });
    }

    fn release_device(&mut self, job: &mut ActiveJob) {
        for d in job.dev.drain(..) {
            self.gpu.free_device(d);
        }
        self.slot_busy[job.slot] = false;
    }

    fn finish_active(&mut self, mut job: ActiveJob, outcome: Result<u64, AccError>) {
        self.release_device(&mut job);
        let now = self.now();
        // A success that arrives after the deadline is still a miss.
        let outcome = match outcome {
            Ok(_) if job.spec.deadline.is_some_and(|d| now > d) => {
                Err(AccError::DeadlineExceeded {
                    tenant: job.spec.tenant,
                    job: job.id,
                })
            }
            other => other,
        };
        if let Err(e) = outcome {
            if matches!(
                e,
                AccError::TransferExhausted { .. }
                    | AccError::Integrity { .. }
                    | AccError::DeviceAlloc { .. }
            ) {
                // Device-path failure: the job itself is fine — resubmit
                // it from scratch under the job-level retry budget.
                let entry = QueuedJob {
                    id: job.id,
                    spec: job.spec,
                    submitted: job.submitted,
                    not_before: now,
                    retries: job.retries,
                    preemptions: job.preemptions,
                    resume: None,
                };
                self.retry_or_fail(entry, e, None);
                return;
            }
            self.record_result(
                job.id,
                job.spec.tenant,
                Err(e),
                job.submitted,
                Some(job.started),
                job.retries,
                job.preemptions,
            );
            return;
        }
        self.record_result(
            job.id,
            job.spec.tenant,
            outcome,
            job.submitted,
            Some(job.started),
            job.retries,
            job.preemptions,
        );
    }

    /// Resubmit a failed entry under the job retry budget, or emit its
    /// failure.
    fn retry_or_fail(&mut self, mut entry: QueuedJob, err: AccError, started: Option<SimTime>) {
        if self.cfg.job_retry.exhausted(entry.retries) {
            self.record_result(
                entry.id,
                entry.spec.tenant,
                Err(err),
                entry.submitted,
                started,
                entry.retries,
                entry.preemptions,
            );
            return;
        }
        let backoff = self.cfg.job_retry.backoff(entry.retries);
        entry.retries += 1;
        entry.not_before = self.now() + backoff;
        entry.resume = None;
        self.stats.entry(entry.spec.tenant).or_default().retries += 1;
        self.queue.requeue(entry);
    }

    fn finish_entry_expired(&mut self, e: QueuedJob, _now: SimTime) {
        self.record_result(
            e.id,
            e.spec.tenant,
            Err(AccError::DeadlineExceeded {
                tenant: e.spec.tenant,
                job: e.id,
            }),
            e.submitted,
            None,
            e.retries,
            e.preemptions,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn record_result(
        &mut self,
        job: JobId,
        tenant: u32,
        outcome: Result<u64, AccError>,
        submitted: SimTime,
        started: Option<SimTime>,
        retries: u32,
        preemptions: u32,
    ) {
        let st = self.stats.entry(tenant).or_default();
        match &outcome {
            Ok(_) => st.completed += 1,
            Err(AccError::DeadlineExceeded { .. }) => st.deadline_missed += 1,
            Err(_) => st.failed += 1,
        }
        self.results.push(JobResult {
            job,
            tenant,
            outcome,
            submitted,
            started,
            finished: self.now(),
            retries,
            preemptions,
        });
    }

    /// The platform died: fold its clock and counters into the runtime's,
    /// requeue every in-flight job from its last durable state (checkpoint
    /// blob or the seed), and bring up a fresh platform. The crash trigger
    /// is disarmed — a plan's crash fires once — while every other
    /// injection in the plan carries over.
    fn recover_from_crash(&mut self) {
        self.crashes_survived += 1;
        self.lost_fault_events += self.gpu.fault_stats().events();
        self.clock_base += self.gpu.host_now();
        let now = self.now();
        let jobs: Vec<ActiveJob> = self.active.drain(..).collect();
        for job in jobs {
            // Device state is gone and host slabs may hold a partial
            // drain; the durable state is the last checkpoint (or the
            // seed). Activation rebuilds host data from it.
            self.queue.requeue(QueuedJob {
                id: job.id,
                spec: job.spec,
                submitted: job.submitted,
                not_before: now,
                retries: job.retries,
                preemptions: job.preemptions,
                resume: job.checkpoint,
            });
        }
        self.cfg.fault_plan.crash = None;
        let mut gpu = GpuSystem::multi(
            self.cfg.machine.clone(),
            self.cfg.num_devices.max(1),
            self.cfg.backed,
        );
        gpu.set_fault_plan(self.cfg.fault_plan.clone());
        self.gpu = gpu;
        self.streams = vec![None; self.cfg.max_active.max(1)];
        self.slot_busy = vec![false; self.cfg.max_active.max(1)];
        // Fresh platform, fresh hardware: retired slots come back.
        self.slot_dead = vec![false; self.cfg.max_active.max(1)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServingConfig {
        ServingConfig {
            max_active: 2,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn clean_jobs_complete_with_golden_digests() {
        let mut rt = ServingRuntime::new(tiny_cfg());
        let specs: Vec<JobSpec> = (0..6)
            .map(|i| JobSpec::new(i % 3, 2, 64, 3, 100 + i as u64))
            .collect();
        for s in &specs {
            rt.submit(s.clone()).unwrap();
        }
        rt.run_until_idle();
        let results = rt.results();
        assert_eq!(results.len(), 6);
        for r in results {
            let spec = specs
                .iter()
                .find(|s| s.tenant == r.tenant && r.outcome == Ok(s.golden_digest()));
            assert!(
                spec.is_some(),
                "job {} of tenant {} must match a golden digest: {:?}",
                r.job,
                r.tenant,
                r.outcome
            );
            assert!(r.finished >= r.submitted);
        }
        assert_eq!(rt.cross_tenant_touches(), 0);
        assert_eq!(rt.hazard_counters().total(), 0);
        let t0 = rt.tenant_stats(0);
        assert_eq!(t0.completed, 2);
        assert_eq!(t0.failed, 0);
    }

    #[test]
    fn shedding_and_quota_protect_the_queue() {
        let mut rt = ServingRuntime::new(ServingConfig {
            max_queue_depth: 4,
            per_tenant_quota: 2,
            ..tiny_cfg()
        });
        assert!(rt.submit(JobSpec::new(0, 1, 16, 1, 1)).is_ok());
        assert!(rt.submit(JobSpec::new(0, 1, 16, 1, 2)).is_ok());
        assert_eq!(
            rt.submit(JobSpec::new(0, 1, 16, 1, 3)),
            Err(AccError::QuotaExceeded { tenant: 0 })
        );
        assert!(rt.submit(JobSpec::new(1, 1, 16, 1, 4)).is_ok());
        assert!(rt.submit(JobSpec::new(2, 1, 16, 1, 5)).is_ok());
        assert_eq!(
            rt.submit(JobSpec::new(3, 1, 16, 1, 6)),
            Err(AccError::QueueFull { tenant: 3 })
        );
        let st = rt.tenant_stats(0);
        assert_eq!(st.shed_quota, 1);
        assert_eq!(rt.tenant_stats(3).shed_queue_full, 1);
        rt.run_until_idle();
        assert_eq!(rt.results().len(), 4, "shed jobs never produce results");
    }

    #[test]
    fn impossible_deadline_fails_without_device_time() {
        let mut rt = ServingRuntime::new(tiny_cfg());
        // Fill both slots with real work, then queue a job whose deadline
        // is already hopeless.
        rt.submit(JobSpec::new(0, 2, 4096, 8, 1)).unwrap();
        rt.submit(JobSpec::new(0, 2, 4096, 8, 2)).unwrap();
        rt.submit(JobSpec::new(1, 1, 16, 1, 3).with_deadline(SimTime::from_ns(1)))
            .unwrap();
        rt.run_until_idle();
        let miss = rt
            .results()
            .iter()
            .find(|r| r.tenant == 1)
            .expect("deadline job has a result");
        assert!(matches!(
            miss.outcome,
            Err(AccError::DeadlineExceeded { tenant: 1, .. })
        ));
        assert_eq!(rt.tenant_stats(1).deadline_missed, 1);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let mut rt = ServingRuntime::new(ServingConfig {
            fault_plan: FaultPlan::none().with_seed(11).with_transient(0.2),
            ..tiny_cfg()
        });
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(i % 2, 2, 64, 3, 500 + i as u64))
            .collect();
        for s in &specs {
            rt.submit(s.clone()).unwrap();
        }
        rt.run_until_idle();
        assert_eq!(rt.results().len(), 4);
        for r in rt.results() {
            assert!(r.outcome.is_ok(), "retries absorb transients: {r:?}");
        }
        assert!(
            rt.fault_stats().h2d_faults + rt.fault_stats().d2h_faults > 0,
            "the schedule did inject faults"
        );
    }

    #[test]
    fn priority_preempts_and_restores_bit_identically() {
        let mut rt = ServingRuntime::new(ServingConfig {
            max_active: 1,
            ..ServingConfig::default()
        });
        let long = JobSpec::new(0, 2, 256, 12, 7);
        let hot = JobSpec::new(1, 1, 64, 2, 8).with_priority(9);
        let golden_long = long.golden_digest();
        let long_id = rt.submit(long).unwrap();
        // Let the long job get onto the device before the VIP arrives.
        assert!(rt.run_rounds(6), "the long job alone keeps the device busy");
        rt.submit(hot.clone()).unwrap();
        rt.run_until_idle();
        let long_res = rt
            .results()
            .iter()
            .find(|r| r.job == long_id)
            .unwrap()
            .clone();
        assert_eq!(long_res.outcome, Ok(golden_long), "restored run matches");
        assert!(
            long_res.preemptions >= 1,
            "the VIP must have evicted the long job: {long_res:?}"
        );
        assert_eq!(rt.tenant_stats(0).preemptions, long_res.preemptions as u64);
        let hot_res = rt.results().iter().find(|r| r.tenant == 1).unwrap();
        assert_eq!(hot_res.outcome, Ok(hot.golden_digest()));
    }

    #[test]
    fn device_death_mid_flood_loses_no_admitted_jobs() {
        // Acceptance (b): 4 tenants flood a 2-device runtime open-loop;
        // device 1 dies mid-flood. Every admitted job must end golden (the
        // survivors absorb the evacuated work) — never silently dropped —
        // and no job-retry budget is consumed by the loss.
        let mut rt = ServingRuntime::new(ServingConfig {
            num_devices: 2,
            max_active: 4,
            fault_plan: FaultPlan::none()
                .with_device_death(gpu_sim::DeviceDeath::at_transfer(1, 6)),
            ..ServingConfig::default()
        });
        let mut admitted: Vec<(JobId, JobSpec)> = Vec::new();
        for wave in 0..4u64 {
            for t in 0..4u32 {
                let spec = JobSpec::new(t, 2, 64, 3, 1000 + wave * 4 + t as u64);
                let id = rt.submit(spec.clone()).unwrap();
                admitted.push((id, spec));
            }
            rt.run_rounds(3);
        }
        rt.run_until_idle();
        assert_eq!(rt.fault_stats().device_deaths, 1, "the seeded death fired");
        assert_eq!(rt.lost_devices(), vec![1]);
        assert_eq!(
            rt.results().len(),
            admitted.len(),
            "every admitted job has a terminal result"
        );
        for (id, spec) in &admitted {
            let r = rt.results().iter().find(|r| r.job == *id).unwrap();
            // The digest is a pure function of the spec, so golden here is
            // bit-identical to a solo run of the same job — bystander
            // tenants included.
            assert_eq!(r.outcome, Ok(spec.golden_digest()), "job {id} is golden");
            assert_eq!(r.retries, 0, "device loss must not burn retry budget");
        }
        let evacuated: u64 = (0..4).map(|t| rt.tenant_stats(t).evacuated).sum();
        assert!(evacuated > 0, "the death caught jobs mid-run");
        assert_eq!(rt.cross_tenant_touches(), 0);
        assert_eq!(rt.hazard_counters().total(), 0);
    }

    #[test]
    fn total_device_loss_fails_the_backlog_typed() {
        // Single device dies: nothing can ever run again. The backlog must
        // come back as typed DeviceLost failures, not hang or vanish.
        let mut rt = ServingRuntime::new(ServingConfig {
            fault_plan: FaultPlan::none()
                .with_device_death(gpu_sim::DeviceDeath::at_transfer(0, 3)),
            ..tiny_cfg()
        });
        for t in 0..3u32 {
            rt.submit(JobSpec::new(t, 2, 64, 3, 70 + t as u64)).unwrap();
        }
        rt.run_until_idle();
        assert_eq!(rt.results().len(), 3, "no admitted job is silently lost");
        let lost = rt
            .results()
            .iter()
            .filter(|r| matches!(r.outcome, Err(AccError::DeviceLost { device: 0 })))
            .count();
        assert!(lost > 0, "the loss surfaces typed");
        for r in rt.results() {
            assert!(
                r.outcome.is_ok() || matches!(r.outcome, Err(AccError::DeviceLost { .. })),
                "golden or typed, never anything else: {r:?}"
            );
        }
    }

    #[test]
    fn platform_crash_is_survived_and_results_stay_golden() {
        let mut rt = ServingRuntime::new(ServingConfig {
            fault_plan: FaultPlan::none().with_crash(gpu_sim::CrashFault::at_transfer(5)),
            ..tiny_cfg()
        });
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(i, 2, 64, 3, 900 + i as u64))
            .collect();
        for s in &specs {
            rt.submit(s.clone()).unwrap();
        }
        rt.run_until_idle();
        assert_eq!(rt.crashes_survived(), 1, "the seeded crash fired");
        assert_eq!(rt.results().len(), 4);
        for (r, s) in rt.results().iter().map(|r| {
            let s = specs.iter().find(|s| s.tenant == r.tenant).unwrap();
            (r, s)
        }) {
            assert_eq!(r.outcome, Ok(s.golden_digest()), "rebuilt run is golden");
        }
    }
}
