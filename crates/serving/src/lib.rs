//! Multi-tenant serving on the simulated accelerator.
//!
//! The paper's runtime overlaps one *job's* transfers with its own
//! compute. This crate applies the same overlap argument across *tenants*:
//! a fair-share scheduler keeps several tenants' jobs resident at once,
//! each in its own stream with disjoint buffers, so one tenant's H2D DMA
//! runs under another tenant's kernel. Around that core sit the serving
//! concerns a shared platform needs:
//!
//! * **admission control** — a bounded queue with per-tenant quotas; jobs
//!   beyond either bound are shed with typed errors
//!   ([`tida_acc::AccError::QueueFull`] /
//!   [`tida_acc::AccError::QuotaExceeded`]) before touching the device;
//! * **deadlines** — queued or finished past their deadline, jobs fail
//!   with [`tida_acc::AccError::DeadlineExceeded`];
//! * **retry** — transient transfer faults are retried under one
//!   [`tida_acc::RetryPolicy`]; persistent device-path failures resubmit
//!   the whole job under a second, job-level budget;
//! * **preemption** — higher-priority arrivals evict the lowest-priority
//!   running job at a step boundary through the TACK checkpoint codec;
//!   the evicted job resumes later, bit-identical to an uninterrupted run;
//! * **fault isolation** — injected faults, corruption and even
//!   whole-platform crashes scoped to one tenant leave every other
//!   tenant's results bit-identical to solo golden runs, witnessed by
//!   digests plus the platform's cross-tenant touch counter.

mod job;
mod queue;
mod runtime;

pub use job::{JobId, JobResult, JobSpec};
pub use runtime::{ServingConfig, ServingRuntime, TenantStats};
