//! Admission control: the bounded queue in front of the device.
//!
//! Overload protection happens here, before any device resource is
//! touched: a full queue sheds the new job ([`AccError::QueueFull`]), a
//! tenant at its quota is shed ([`AccError::QuotaExceeded`]) so one
//! tenant's backlog cannot crowd out the others, and jobs whose deadline
//! passes while queued are failed at dispatch time without ever occupying
//! the device ([`AccError::DeadlineExceeded`]).

use std::collections::{HashMap, VecDeque};

use gpu_sim::SimTime;
use tida_acc::AccError;

use crate::job::{JobId, JobSpec};

/// One queued unit of work. Re-enqueued entries (job-level retries and
/// preempted jobs being restored) keep their original identity and
/// submission time so end-to-end latency accounting stays honest.
#[derive(Debug, Clone)]
pub(crate) struct QueuedJob {
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    pub(crate) submitted: SimTime,
    /// Earliest virtual time the entry may be dispatched (retry backoff).
    pub(crate) not_before: SimTime,
    pub(crate) retries: u32,
    pub(crate) preemptions: u32,
    /// TACK-encoded checkpoint of a preempted run to resume from.
    pub(crate) resume: Option<Vec<u8>>,
}

/// Bounded, quota-enforcing admission queue.
#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    queue: VecDeque<QueuedJob>,
    max_depth: usize,
    per_tenant_quota: usize,
    queued_per_tenant: HashMap<u32, usize>,
    /// Queued entries carrying a deadline, so the per-round expiry sweep
    /// is free for deadline-less workloads (the open-loop bench).
    with_deadline: usize,
    next_id: JobId,
}

impl AdmissionQueue {
    pub(crate) fn new(max_depth: usize, per_tenant_quota: usize) -> Self {
        assert!(max_depth > 0 && per_tenant_quota > 0);
        AdmissionQueue {
            queue: VecDeque::new(),
            max_depth,
            per_tenant_quota,
            queued_per_tenant: HashMap::new(),
            with_deadline: 0,
            next_id: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub(crate) fn queued_for(&self, tenant: u32) -> usize {
        self.queued_per_tenant.get(&tenant).copied().unwrap_or(0)
    }

    /// Admit a fresh job or shed it. Shedding is an admission verdict, not
    /// a runtime failure: nothing was dispatched, no device state exists.
    pub(crate) fn admit(&mut self, spec: JobSpec, now: SimTime) -> Result<JobId, AccError> {
        if self.queue.len() >= self.max_depth {
            return Err(AccError::QueueFull {
                tenant: spec.tenant,
            });
        }
        let tenant = spec.tenant;
        let queued = self.queued_for(tenant);
        if queued >= self.per_tenant_quota {
            return Err(AccError::QuotaExceeded { tenant });
        }
        let id = self.next_id;
        self.next_id += 1;
        *self.queued_per_tenant.entry(tenant).or_insert(0) += 1;
        if spec.deadline.is_some() {
            self.with_deadline += 1;
        }
        self.queue.push_back(QueuedJob {
            id,
            spec,
            submitted: now,
            not_before: now,
            retries: 0,
            preemptions: 0,
            resume: None,
        });
        Ok(id)
    }

    /// Put an already-admitted entry back (retry after a device-path
    /// failure, or a preempted job carrying its checkpoint). Re-entry is
    /// exempt from depth and quota checks: the job was already accepted
    /// and its quota slot is still accounted to it.
    pub(crate) fn requeue(&mut self, entry: QueuedJob) {
        *self.queued_per_tenant.entry(entry.spec.tenant).or_insert(0) += 1;
        if entry.spec.deadline.is_some() {
            self.with_deadline += 1;
        }
        self.queue.push_back(entry);
    }

    /// Highest-priority dispatchable entry at `now` (FIFO among equals,
    /// skipping entries still in retry backoff). `None` when nothing is
    /// eligible yet.
    pub(crate) fn pop_dispatchable(&mut self, now: SimTime) -> Option<QueuedJob> {
        let idx = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, e)| e.not_before <= now)
            .max_by(|(ia, a), (ib, b)| {
                (a.spec.priority, std::cmp::Reverse(*ia))
                    .cmp(&(b.spec.priority, std::cmp::Reverse(*ib)))
            })
            .map(|(i, _)| i)?;
        let entry = self.queue.remove(idx).unwrap();
        let n = self
            .queued_per_tenant
            .get_mut(&entry.spec.tenant)
            .expect("queued tenant has a counter");
        *n -= 1;
        if entry.spec.deadline.is_some() {
            self.with_deadline -= 1;
        }
        entry.into()
    }

    /// Drop every queued entry whose deadline has already passed,
    /// returning them so the runtime can emit failed results.
    pub(crate) fn expire_deadlines(&mut self, now: SimTime) -> Vec<QueuedJob> {
        if self.with_deadline == 0 {
            return Vec::new();
        }
        let mut expired = Vec::new();
        let mut keep = VecDeque::with_capacity(self.queue.len());
        for e in self.queue.drain(..) {
            if e.spec.deadline.is_some_and(|d| now > d) {
                let n = self
                    .queued_per_tenant
                    .get_mut(&e.spec.tenant)
                    .expect("queued tenant has a counter");
                *n -= 1;
                self.with_deadline -= 1;
                expired.push(e);
            } else {
                keep.push_back(e);
            }
        }
        self.queue = keep;
        expired
    }

    /// Priority of the best dispatchable entry at `now` without removing
    /// it — what the preemption policy compares running jobs against.
    pub(crate) fn best_priority(&self, now: SimTime) -> Option<u32> {
        self.queue
            .iter()
            .filter(|e| e.not_before <= now)
            .map(|e| e.spec.priority)
            .max()
    }

    /// Earliest `not_before` among queued entries — how far the runtime
    /// must idle the host when everything eligible is backing off.
    pub(crate) fn earliest_ready(&self) -> Option<SimTime> {
        self.queue.iter().map(|e| e.not_before).min()
    }

    /// Remove and return every queued entry regardless of backoff state —
    /// the runtime's last resort when no live device remains to serve
    /// them, so each can be failed with a typed verdict instead of
    /// waiting forever.
    pub(crate) fn drain_all(&mut self) -> Vec<QueuedJob> {
        self.queued_per_tenant.clear();
        self.with_deadline = 0;
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: u32) -> JobSpec {
        JobSpec::new(tenant, 1, 16, 1, 1)
    }

    #[test]
    fn depth_bound_sheds_and_quota_protects_other_tenants() {
        let mut q = AdmissionQueue::new(3, 2);
        assert!(q.admit(spec(0), SimTime::ZERO).is_ok());
        assert!(q.admit(spec(0), SimTime::ZERO).is_ok());
        // Tenant 0 is at quota: its third job is shed even though the
        // queue has room...
        assert_eq!(
            q.admit(spec(0), SimTime::ZERO),
            Err(AccError::QuotaExceeded { tenant: 0 })
        );
        // ...which is exactly the room tenant 1 still gets.
        assert!(q.admit(spec(1), SimTime::ZERO).is_ok());
        assert_eq!(
            q.admit(spec(2), SimTime::ZERO),
            Err(AccError::QueueFull { tenant: 2 })
        );
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn dispatch_prefers_priority_then_fifo_and_respects_backoff() {
        let mut q = AdmissionQueue::new(10, 10);
        let a = q.admit(spec(0), SimTime::ZERO).unwrap();
        let b = q.admit(spec(1).with_priority(5), SimTime::ZERO).unwrap();
        let c = q.admit(spec(2), SimTime::ZERO).unwrap();
        assert_eq!(q.pop_dispatchable(SimTime::ZERO).unwrap().id, b);
        assert_eq!(q.pop_dispatchable(SimTime::ZERO).unwrap().id, a);
        // Requeued entry in backoff is skipped until its time comes.
        let mut e = q.pop_dispatchable(SimTime::ZERO).unwrap();
        assert_eq!(e.id, c);
        e.not_before = SimTime::from_us(50);
        q.requeue(e);
        assert!(q.pop_dispatchable(SimTime::from_us(10)).is_none());
        assert_eq!(q.earliest_ready(), Some(SimTime::from_us(50)));
        assert_eq!(q.pop_dispatchable(SimTime::from_us(50)).unwrap().id, c);
    }

    #[test]
    fn queued_deadline_expiry_releases_quota() {
        let mut q = AdmissionQueue::new(10, 1);
        q.admit(spec(0).with_deadline(SimTime::from_us(10)), SimTime::ZERO)
            .unwrap();
        assert!(q.expire_deadlines(SimTime::from_us(10)).is_empty());
        let dead = q.expire_deadlines(SimTime::from_us(11));
        assert_eq!(dead.len(), 1);
        assert_eq!(q.queued_for(0), 0, "expiry frees the quota slot");
        assert!(q.admit(spec(0), SimTime::ZERO).is_ok());
    }
}
