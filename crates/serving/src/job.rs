//! Job model of the serving layer.
//!
//! A job is a self-contained piece of tenant work: a handful of data
//! regions, seeded deterministically, pushed through a fixed number of
//! elementwise device steps and drained back. The compute is intentionally
//! simple — its value is that the final bytes are a *pure function of the
//! spec* (seed, sizes, step count), independent of scheduling, batching,
//! preemption, platform crashes and co-tenants. That is what lets the
//! isolation suite demand bit-identical results between a solo run, a
//! shared run, and a preempted-then-restored run.

use gpu_sim::SimTime;
use memslab::fnv1a64_f64s;
use tida_acc::AccError;

/// Identifier of an admitted job, unique per runtime instance.
pub type JobId = u64;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What one tenant asks the runtime to do.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Owning tenant (quota accounting, fault scoping, isolation).
    pub tenant: u32,
    /// Number of data regions (device buffers) the job works on.
    pub regions: usize,
    /// Elements (f64) per region.
    pub region_len: usize,
    /// Device steps: each applies the same elementwise map to every region.
    pub steps: u64,
    /// Seed of the initial data and the step constant.
    pub seed: u64,
    /// Larger runs first and may preempt smaller ones mid-run.
    pub priority: u32,
    /// Virtual-time deadline; a job still queued (or unfinished) past it is
    /// failed with [`AccError::DeadlineExceeded`].
    pub deadline: Option<SimTime>,
}

impl JobSpec {
    pub fn new(tenant: u32, regions: usize, region_len: usize, steps: u64, seed: u64) -> Self {
        assert!(regions > 0 && region_len > 0, "a job must carry data");
        JobSpec {
            tenant,
            regions,
            region_len,
            steps,
            seed,
            priority: 0,
            deadline: None,
        }
    }

    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Total payload of one full H2D (or D2H) pass.
    pub fn bytes(&self) -> u64 {
        (self.regions * self.region_len * std::mem::size_of::<f64>()) as u64
    }

    /// Initial value of element `i` of region `r` — a deterministic
    /// function of the spec seed, so any party (runtime, golden model,
    /// crash recovery) can rebuild the input bit-identically.
    pub fn seed_value(&self, r: usize, i: usize) -> f64 {
        let h = splitmix64(self.seed ^ ((r as u64) << 32) ^ i as u64);
        // Map to [1, 2): exactly representable steps, no subnormal drift.
        1.0 + (h >> 12) as f64 / (1u64 << 52) as f64
    }

    /// The per-step elementwise map. Halving keeps every step exact in
    /// binary floating point; the seeded constant makes different jobs
    /// compute different answers.
    pub fn step_value(&self, x: f64) -> f64 {
        let c = (splitmix64(self.seed ^ 0x5354_4550) >> 12) as f64 / (1u64 << 52) as f64;
        x * 0.5 + c
    }

    /// Fill `out[r]` with region `r`'s initial data.
    pub fn seed_region(&self, r: usize, out: &mut [f64]) {
        for (i, x) in out.iter_mut().enumerate() {
            *x = self.seed_value(r, i);
        }
    }

    /// Reference result: the digest a faithful end-to-end run must
    /// produce, computed host-side with no simulator involved.
    pub fn golden_digest(&self) -> u64 {
        let mut region = vec![0.0f64; self.region_len];
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for r in 0..self.regions {
            self.seed_region(r, &mut region);
            for _ in 0..self.steps {
                for x in region.iter_mut() {
                    *x = self.step_value(*x);
                }
            }
            acc = splitmix64(acc ^ fnv1a64_f64s(&region));
        }
        acc
    }

    /// Combine per-region digests the same way [`JobSpec::golden_digest`]
    /// does — used by the executor on the drained device results.
    pub fn combine_digests(region_digests: impl IntoIterator<Item = u64>) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for d in region_digests {
            acc = splitmix64(acc ^ d);
        }
        acc
    }
}

/// Terminal record of one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    pub job: JobId,
    pub tenant: u32,
    /// Digest of the drained result data, or the typed failure.
    pub outcome: Result<u64, AccError>,
    /// Virtual time the job entered the admission queue.
    pub submitted: SimTime,
    /// Virtual time the job first reached the device (first dispatch).
    pub started: Option<SimTime>,
    /// Virtual time the job left the runtime (success or failure).
    pub finished: SimTime,
    /// Job-level resubmissions after device-path failures.
    pub retries: u32,
    /// Times the job was evicted mid-run (and later restored).
    pub preemptions: u32,
}

impl JobResult {
    /// Queue + service latency in virtual time.
    pub fn latency(&self) -> SimTime {
        self.finished - self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_digest_is_deterministic_and_spec_sensitive() {
        let a = JobSpec::new(0, 2, 64, 4, 42);
        assert_eq!(a.golden_digest(), a.golden_digest());
        assert_ne!(
            a.golden_digest(),
            JobSpec::new(0, 2, 64, 4, 43).golden_digest(),
            "seed changes the answer"
        );
        assert_ne!(
            a.golden_digest(),
            JobSpec::new(0, 2, 64, 5, 42).golden_digest(),
            "step count changes the answer"
        );
        // The tenant is bookkeeping, not data: results depend only on the
        // work, so a tenant's digest can be compared across placements.
        assert_eq!(
            a.golden_digest(),
            JobSpec::new(9, 2, 64, 4, 42).golden_digest()
        );
    }

    #[test]
    fn step_math_is_exact_in_f64() {
        let spec = JobSpec::new(0, 1, 8, 30, 7);
        let mut v = vec![0.0; 8];
        spec.seed_region(0, &mut v);
        // 30 halvings of a [1,2) value stay normal and exact; the digest
        // path never compares approximately, so this must hold.
        for _ in 0..30 {
            for x in v.iter_mut() {
                *x = spec.step_value(*x);
            }
        }
        assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
    }
}
