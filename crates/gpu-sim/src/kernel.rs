//! Kernel launch descriptors.
//!
//! A [`KernelLaunch`] is what the host submits to a stream: a label, a cost
//! declaration for the scheduler, an optional *executor* closure that
//! performs the kernel's data effect on the (simulated) device buffers, and
//! the buffer access lists used by the hazard checker.
//!
//! The executor captures [`memslab::Slab`] handles directly; it runs at the
//! kernel's scheduled position, so it observes exactly the data a real device
//! would (including the effects of earlier copies into a reused buffer).

use crate::config::KernelCost;
use crate::system::BufKey;
use std::borrow::Cow;

/// Description of one kernel launch. Build with [`KernelLaunch::new`].
pub struct KernelLaunch {
    pub(crate) label: Cow<'static, str>,
    pub(crate) cost: KernelCost,
    pub(crate) efficiency: f64,
    pub(crate) exec: Option<Box<dyn FnOnce()>>,
    pub(crate) reads: Vec<BufKey>,
    pub(crate) writes: Vec<BufKey>,
}

impl KernelLaunch {
    /// A kernel with the given trace label and cost.
    pub fn new(label: impl Into<Cow<'static, str>>, cost: KernelCost) -> Self {
        KernelLaunch {
            label: label.into(),
            cost,
            efficiency: 1.0,
            exec: None,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Kernel efficiency in (0, 1]; models untuned launch geometry
    /// (the paper lets the OpenACC compiler pick grid/block shapes, §II-C).
    pub fn efficiency(mut self, e: f64) -> Self {
        self.efficiency = e;
        self
    }

    /// The data effect: runs when the kernel executes in simulated time.
    pub fn exec(mut self, f: impl FnOnce() + 'static) -> Self {
        self.exec = Some(Box::new(f));
        self
    }

    /// Declare a buffer the kernel reads (hazard checking + managed-memory
    /// migration).
    pub fn reads(mut self, key: BufKey) -> Self {
        self.reads.push(key);
        self
    }

    /// Declare a buffer the kernel writes.
    pub fn writes(mut self, key: BufKey) -> Self {
        self.writes.push(key);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelCost, MachineConfig};
    use desim::SimTime;

    #[test]
    fn builder_sets_fields() {
        let k = KernelLaunch::new("k", KernelCost::Fixed(SimTime::from_us(1)))
            .efficiency(0.5)
            .reads(BufKey::Device(0))
            .writes(BufKey::Device(1));
        assert_eq!(k.label, "k");
        assert_eq!(k.efficiency, 0.5);
        assert_eq!(k.reads, vec![BufKey::Device(0)]);
        assert_eq!(k.writes, vec![BufKey::Device(1)]);
        assert!(k.exec.is_none());
    }

    #[test]
    fn cost_duration_matches_config() {
        let cfg = MachineConfig::k40m();
        let k = KernelLaunch::new("k", KernelCost::Bytes(1 << 20));
        let d = k.cost.duration(&cfg, k.efficiency);
        assert!(d > cfg.kernel_launch_overhead);
    }
}
