//! Kernel launch descriptors.
//!
//! A [`KernelLaunch`] is what the host submits to a stream: a label, a cost
//! declaration for the scheduler, an optional *executor* closure that
//! performs the kernel's data effect on the (simulated) device buffers, and
//! the buffer access lists used by the hazard checker.
//!
//! The executor captures [`memslab::Slab`] handles directly; it runs at the
//! kernel's scheduled position, so it observes exactly the data a real device
//! would (including the effects of earlier copies into a reused buffer).

use crate::config::KernelCost;
use crate::system::BufKey;
use desim::Sym;

/// Inline-first access list: kernels read and write a handful of buffers
/// (stencils touch two or three), so the first four keys live on the stack
/// and only longer declarations spill to the heap.
pub(crate) struct KeyList {
    inline: [BufKey; 4],
    len: usize,
    spill: Vec<BufKey>,
}

impl KeyList {
    fn new() -> Self {
        KeyList {
            inline: [BufKey::Device(0); 4],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, key: BufKey) {
        if self.len < self.inline.len() {
            self.inline[self.len] = key;
        } else {
            self.spill.push(key);
        }
        self.len += 1;
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = BufKey> + '_ {
        self.inline[..self.len.min(self.inline.len())]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Description of one kernel launch. Build with [`KernelLaunch::new`].
pub struct KernelLaunch {
    pub(crate) label: Sym,
    pub(crate) cost: KernelCost,
    pub(crate) efficiency: f64,
    pub(crate) exec: Option<Box<dyn FnOnce()>>,
    pub(crate) reads: KeyList,
    pub(crate) writes: KeyList,
}

impl KernelLaunch {
    /// A kernel with the given trace label and cost. The label is interned
    /// ([`Sym`]); pass a `Sym` directly on hot paths to skip the lookup.
    pub fn new(label: impl Into<Sym>, cost: KernelCost) -> Self {
        KernelLaunch {
            label: label.into(),
            cost,
            efficiency: 1.0,
            exec: None,
            reads: KeyList::new(),
            writes: KeyList::new(),
        }
    }

    /// Kernel efficiency in (0, 1]; models untuned launch geometry
    /// (the paper lets the OpenACC compiler pick grid/block shapes, §II-C).
    pub fn efficiency(mut self, e: f64) -> Self {
        self.efficiency = e;
        self
    }

    /// The data effect: runs when the kernel executes in simulated time.
    pub fn exec(mut self, f: impl FnOnce() + 'static) -> Self {
        self.exec = Some(Box::new(f));
        self
    }

    /// Install the data effect only when `backed` is true. Timing-only
    /// systems hand out virtual slabs, on which every effect provably
    /// no-ops (views return `None` without calling the closure), so
    /// skipping the box — and the closure's captures — is observationally
    /// identical and keeps the launch hot path allocation-free.
    pub fn exec_if(self, backed: bool, f: impl FnOnce() + 'static) -> Self {
        if backed {
            self.exec(f)
        } else {
            self
        }
    }

    /// Declare a buffer the kernel reads (hazard checking + managed-memory
    /// migration).
    pub fn reads(mut self, key: BufKey) -> Self {
        self.reads.push(key);
        self
    }

    /// Declare a buffer the kernel writes.
    pub fn writes(mut self, key: BufKey) -> Self {
        self.writes.push(key);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelCost, MachineConfig};
    use desim::SimTime;

    #[test]
    fn builder_sets_fields() {
        let k = KernelLaunch::new("k", KernelCost::Fixed(SimTime::from_us(1)))
            .efficiency(0.5)
            .reads(BufKey::Device(0))
            .writes(BufKey::Device(1));
        assert_eq!(k.label, "k");
        assert_eq!(k.efficiency, 0.5);
        assert_eq!(k.reads.iter().collect::<Vec<_>>(), vec![BufKey::Device(0)]);
        assert_eq!(k.writes.iter().collect::<Vec<_>>(), vec![BufKey::Device(1)]);
        assert!(k.exec.is_none());
    }

    #[test]
    fn cost_duration_matches_config() {
        let cfg = MachineConfig::k40m();
        let k = KernelLaunch::new("k", KernelCost::Bytes(1 << 20));
        let d = k.cost.duration(&cfg, k.efficiency);
        assert!(d > cfg.kernel_launch_overhead);
    }
}
