//! Post-run analysis: where did the time go?
//!
//! [`RunReport`] condenses a finished run into the quantities the paper
//! argues about — per-engine utilization, transfer/compute overlap, and a
//! critical-path breakdown by category (is the run bound by kernels, by the
//! interconnect, or by host-side work?).

use crate::fault::FaultStats;
use crate::hazard::HazardCounters;
use crate::memory::IntegrityStats;
use crate::system::GpuSystem;
use desim::{Bound, CriticalStep, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Checkpoint/restart accounting merged into a [`RunReport`] by a recovery
/// supervisor (the simulator itself only observes faults; checkpointing
/// lives a layer above, in the accelerator runtime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    pub checkpoints_taken: u64,
    pub checkpoints_restored: u64,
    pub hang_detections: u64,
    pub crash_detections: u64,
    /// Unrepairable silent corruptions that triggered a checkpoint restore.
    pub corruption_detections: u64,
    /// Torn or corrupt snapshots rejected during restore.
    pub snapshots_rejected: u64,
    /// Virtual time spent in attempts that were later discarded.
    pub recovery_time: SimTime,
}

impl RecoveryCounters {
    pub fn any(&self) -> bool {
        self.checkpoints_taken
            + self.checkpoints_restored
            + self.hang_detections
            + self.crash_detections
            + self.corruption_detections
            + self.snapshots_rejected
            > 0
    }
}

/// Device-health and failover accounting merged into a [`RunReport`] by a
/// health monitor / failover runtime (the simulator only injects device
/// faults; quarantine decisions and region migration live a layer above).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Healthy→quarantined transitions (hysteresis entry).
    pub quarantines: u64,
    /// Quarantined→healthy transitions (hysteresis exit).
    pub readmissions: u64,
    /// Devices permanently retired (death or ECC kill) the runtime observed.
    pub devices_lost: u64,
    /// Regions re-owned onto surviving devices by live migration.
    pub regions_migrated: u64,
    /// Bytes re-staged onto surviving devices to rebuild migrated regions
    /// (accounted separately from steady-state loads).
    pub migration_restage_bytes: u64,
}

impl HealthCounters {
    pub fn any(&self) -> bool {
        self.quarantines
            + self.readmissions
            + self.devices_lost
            + self.regions_migrated
            + self.migration_restage_bytes
            > 0
    }
}

/// Prefetch/overlap-scheduler accounting merged into a [`RunReport`] by an
/// accelerator runtime (the simulator never prefetches on its own; the
/// lookahead scheduler lives a layer above, like checkpointing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchCounters {
    /// H2D loads issued ahead of first use (explicit or automatic).
    pub loads: u64,
    /// First uses that found their region already staged by a prefetch.
    pub hits: u64,
    /// Prefetch requests abandoned without staging (static-slot conflict,
    /// quarantine-exhausted pool, failed device).
    pub fallbacks: u64,
    /// Clean evictions whose write-back was elided because the step plan
    /// proved the host mirror current.
    pub deferred_writebacks: u64,
}

impl PrefetchCounters {
    pub fn any(&self) -> bool {
        self.loads + self.hits + self.fallbacks + self.deferred_writebacks > 0
    }
}

/// A condensed account of a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub elapsed: SimTime,
    /// (engine name, busy time, utilization in `[0,1]`).
    pub engines: Vec<(String, SimTime, f64)>,
    /// Simulated time both an H2D engine and a compute engine were busy.
    pub h2d_compute_overlap: SimTime,
    /// Simulated time both a D2H engine and a compute engine were busy.
    pub d2h_compute_overlap: SimTime,
    /// Critical-path time by category (kernel / h2d / d2h / host / ...).
    pub critical_by_category: BTreeMap<&'static str, SimTime>,
    /// Number of steps on the critical path.
    pub critical_len: usize,
    /// Injected fault events (transfer faults, refused allocations, stalls).
    pub fault_events: u64,
    /// Engine time consumed by faulted attempts and injected stalls — the
    /// recovery cost a resilient runtime pays on top of useful work.
    pub fault_time: SimTime,
    /// Full fault-layer counters for the run.
    pub fault_stats: FaultStats,
    /// Checkpoint/restart accounting (zero unless a supervisor merged its
    /// counters via [`RunReport::with_recovery`]).
    pub recovery: RecoveryCounters,
    /// Lookahead-prefetch accounting (zero unless a runtime merged its
    /// counters via [`RunReport::with_prefetch`]).
    pub prefetch: PrefetchCounters,
    /// Device-health / failover accounting (zero unless a health monitor
    /// merged its counters via [`RunReport::with_health`]).
    pub health: HealthCounters,
    /// Transfer/resident digest verification counters for the run.
    pub integrity: IntegrityStats,
    /// Stream-ordering hazards flagged by the happens-before detector
    /// (every field must be zero for a correctly ordered program).
    pub hazards: HazardCounters,
}

impl RunReport {
    /// The category carrying the largest share of the critical path.
    pub fn dominant_category(&self) -> Option<(&'static str, SimTime)> {
        self.critical_by_category
            .iter()
            .max_by_key(|(_, t)| **t)
            .map(|(c, t)| (*c, *t))
    }

    /// Merge a supervisor's checkpoint/restart counters into the report.
    pub fn with_recovery(mut self, recovery: RecoveryCounters) -> Self {
        self.recovery = recovery;
        self
    }

    /// Merge a runtime's prefetch/overlap-scheduler counters into the
    /// report.
    pub fn with_prefetch(mut self, prefetch: PrefetchCounters) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Merge a health monitor's quarantine/failover counters into the
    /// report.
    pub fn with_health(mut self, health: HealthCounters) -> Self {
        self.health = health;
        self
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "elapsed {}", self.elapsed)?;
        for (name, busy, util) in &self.engines {
            writeln!(
                f,
                "  {name:<12} busy {busy:<12} ({:.0}% utilized)",
                util * 100.0
            )?;
        }
        writeln!(
            f,
            "  overlap: h2d||compute {}, d2h||compute {}",
            self.h2d_compute_overlap, self.d2h_compute_overlap
        )?;
        writeln!(f, "  critical path ({} ops):", self.critical_len)?;
        for (cat, t) in &self.critical_by_category {
            let share = t.as_secs_f64() / self.elapsed.as_secs_f64().max(1e-12) * 100.0;
            writeln!(f, "    {cat:<8} {t:<12} ({share:.0}%)")?;
        }
        if self.fault_events > 0 || self.fault_stats.salvages > 0 {
            writeln!(
                f,
                "  faults: {} events, {} lost to faulted attempts/stalls, {} salvage copies",
                self.fault_events, self.fault_time, self.fault_stats.salvages
            )?;
        }
        if self.recovery.any() {
            writeln!(
                f,
                "  recovery: {} ckpts taken, {} restored, {} hangs, {} crashes, {} corruptions, {} rejected, {} lost to discarded attempts",
                self.recovery.checkpoints_taken,
                self.recovery.checkpoints_restored,
                self.recovery.hang_detections,
                self.recovery.crash_detections,
                self.recovery.corruption_detections,
                self.recovery.snapshots_rejected,
                self.recovery.recovery_time
            )?;
        }
        if self.prefetch.any() {
            writeln!(
                f,
                "  prefetch: {} loads, {} hits, {} fallbacks, {} deferred write-backs",
                self.prefetch.loads,
                self.prefetch.hits,
                self.prefetch.fallbacks,
                self.prefetch.deferred_writebacks
            )?;
        }
        if self.health.any() {
            writeln!(
                f,
                "  health: {} quarantines, {} readmissions, {} devices lost, {} regions migrated, {} B re-staged",
                self.health.quarantines,
                self.health.readmissions,
                self.health.devices_lost,
                self.health.regions_migrated,
                self.health.migration_restage_bytes
            )?;
        }
        if self.integrity.detected + self.integrity.unrepaired > 0 {
            writeln!(
                f,
                "  integrity: {} verified, {} corrupted, {} repaired, {} unrepaired",
                self.integrity.verified,
                self.integrity.detected,
                self.integrity.repaired,
                self.integrity.unrepaired
            )?;
        }
        if self.hazards.any() {
            writeln!(
                f,
                "  hazards: {} ({:?})",
                self.hazards.total(),
                self.hazards
            )?;
        }
        Ok(())
    }
}

impl GpuSystem {
    /// Analyze the completed run. Requires tracing to have been enabled;
    /// drains any outstanding work first.
    pub fn report(&mut self) -> RunReport {
        let elapsed = self.finish();
        let trace = self.trace();
        let names = trace.engine_names.clone();

        let engines: Vec<(String, SimTime, f64)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let busy = trace.busy_time(i);
                let util = busy.as_secs_f64() / elapsed.as_secs_f64().max(1e-12);
                (n.clone(), busy, util)
            })
            .collect();

        let idx_of = |suffix: &str| -> Vec<usize> {
            names
                .iter()
                .enumerate()
                .filter(|(_, n)| n.ends_with(suffix))
                .map(|(i, _)| i)
                .collect()
        };
        let mut h2d_compute_overlap = SimTime::ZERO;
        let mut d2h_compute_overlap = SimTime::ZERO;
        for &c in &idx_of("compute") {
            for &h in &idx_of("h2d") {
                h2d_compute_overlap += trace.overlap_time(h, c);
            }
            for &d in &idx_of("d2h") {
                d2h_compute_overlap += trace.overlap_time(d, c);
            }
        }

        let path = self.critical_path();
        let mut critical_by_category: BTreeMap<&'static str, SimTime> = BTreeMap::new();
        for step in &path {
            *critical_by_category
                .entry(step.category.as_str())
                .or_insert(SimTime::ZERO) += step.end - step.start;
        }

        let fault_stats = self.fault_stats();
        RunReport {
            elapsed,
            engines,
            h2d_compute_overlap,
            d2h_compute_overlap,
            critical_by_category,
            critical_len: path.len(),
            fault_events: fault_stats.events(),
            fault_time: fault_stats.lost_time,
            fault_stats,
            recovery: RecoveryCounters::default(),
            prefetch: PrefetchCounters::default(),
            health: HealthCounters::default(),
            integrity: self.integrity_stats(),
            hazards: self.hazard_counters(),
        }
    }

    /// The chain of operations that determined the makespan (see
    /// [`desim::Scheduler::critical_path`]). Drains outstanding work.
    pub fn critical_path(&mut self) -> Vec<CriticalStep> {
        self.device_synchronize();
        self.scheduler_critical_path()
    }

    /// Fraction of critical-path time attributed to waiting on engines
    /// rather than dependencies — a contention measure.
    pub fn contention_share(&mut self) -> f64 {
        let path = self.critical_path();
        if path.is_empty() {
            return 0.0;
        }
        let total: f64 = path.iter().map(|s| (s.end - s.start).as_secs_f64()).sum();
        let contended: f64 = path
            .iter()
            .filter(|s| matches!(s.bound, Bound::Engine(_)))
            .map(|s| (s.end - s.start).as_secs_f64())
            .sum();
        contended / total.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use crate::{GpuSystem, HostMemKind, KernelCost, KernelLaunch, MachineConfig};
    use desim::SimTime;

    fn transfer_bound_run() -> GpuSystem {
        let mut g = GpuSystem::new(MachineConfig::k40m());
        g.set_tracing(true);
        let len = (256 << 20) / 8;
        let h = g.malloc_host(len, HostMemKind::Pinned);
        let d = g.malloc_device(len).unwrap();
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, len, s);
        g.launch_kernel(
            s,
            KernelLaunch::new("k", KernelCost::Fixed(SimTime::from_us(100))),
        );
        g.memcpy_d2h_async(h, 0, d, 0, len, s);
        g
    }

    #[test]
    fn report_identifies_transfer_bound_run() {
        let mut g = transfer_bound_run();
        let r = g.report();
        let (cat, _) = r.dominant_category().unwrap();
        assert!(
            cat == "h2d" || cat == "d2h",
            "256 MiB each way vs a 100us kernel must be transfer-bound, got {cat}"
        );
        assert!(r.critical_len >= 3);
        let text = r.to_string();
        assert!(text.contains("critical path"));
        assert!(text.contains("compute"));
    }

    #[test]
    fn report_identifies_compute_bound_run() {
        let mut g = GpuSystem::new(MachineConfig::k40m());
        g.set_tracing(true);
        let s = g.create_stream();
        for _ in 0..4 {
            g.launch_kernel(
                s,
                KernelLaunch::new("k", KernelCost::Fixed(SimTime::from_ms(50))),
            );
        }
        let r = g.report();
        assert_eq!(r.dominant_category().unwrap().0, "kernel");
        // Compute engine near 100% utilized.
        let (_, _, util) = r
            .engines
            .iter()
            .find(|(n, _, _)| n == "compute")
            .unwrap()
            .clone();
        assert!(util > 0.95, "utilization {util}");
    }

    #[test]
    fn contention_share_detects_serialized_copies() {
        let mut g = GpuSystem::new(MachineConfig::k40m());
        g.set_tracing(true);
        let len = (64 << 20) / 8;
        let h = g.malloc_host(4 * len, HostMemKind::Pinned);
        let devs: Vec<_> = (0..4).map(|_| g.malloc_device(len).unwrap()).collect();
        // Four independent streams all issuing H2D at t=0: three of the four
        // copies wait on the single H2D engine.
        for (i, d) in devs.iter().enumerate() {
            let s = g.create_stream();
            g.memcpy_h2d_async(*d, 0, h, i * len, len, s);
        }
        let share = g.contention_share();
        assert!(share > 0.5, "copies should be contention-bound: {share}");
    }

    #[test]
    fn overlap_fields_populated_for_pipelined_run() {
        let mut g = GpuSystem::new(MachineConfig::k40m());
        g.set_tracing(true);
        let len = (64 << 20) / 8;
        let h = g.malloc_host(2 * len, HostMemKind::Pinned);
        let d0 = g.malloc_device(len).unwrap();
        let d1 = g.malloc_device(len).unwrap();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        g.memcpy_h2d_async(d0, 0, h, 0, len, s0);
        g.launch_kernel(s0, KernelLaunch::new("k", KernelCost::Bytes(1 << 30)));
        g.memcpy_h2d_async(d1, 0, h, len, len, s1);
        let r = g.report();
        assert!(r.h2d_compute_overlap > SimTime::ZERO);
    }
}
