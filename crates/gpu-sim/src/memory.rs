//! Device memory allocator.
//!
//! A first-fit free-list allocator over the simulated device address space,
//! with coalescing on free — the behaviour behind `malloc_device` /
//! `free_device` / `mem_get_info`. The accounting is what matters: TiDA-acc
//! sizes its device slot pool by querying free memory exactly as the paper's
//! `TileAcc` calls `cudaMemGetInfo`.

use std::fmt;

/// Why a device allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    pub requested: u64,
    pub largest_free_block: u64,
    pub free_total: u64,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, largest free block {} bytes, {} bytes free in total",
            self.requested, self.largest_free_block, self.free_total
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// First-fit free-list allocator with coalescing.
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    total: u64,
    /// Free extents as (addr, size), sorted by address, non-adjacent.
    free: Vec<(u64, u64)>,
}

impl DeviceAllocator {
    pub fn new(total: u64) -> Self {
        DeviceAllocator {
            total,
            free: if total > 0 { vec![(0, total)] } else { vec![] },
        }
    }

    /// Total device memory in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Free device memory in bytes (sum over all free extents).
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s).sum()
    }

    /// Largest single allocatable block.
    pub fn largest_free_block(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }

    /// Allocate `size` bytes; returns the base address.
    pub fn alloc(&mut self, size: u64) -> Result<u64, OutOfDeviceMemory> {
        assert!(size > 0, "zero-sized device allocation");
        for i in 0..self.free.len() {
            let (addr, avail) = self.free[i];
            if avail >= size {
                if avail == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (addr + size, avail - size);
                }
                return Ok(addr);
            }
        }
        Err(OutOfDeviceMemory {
            requested: size,
            largest_free_block: self.largest_free_block(),
            free_total: self.free_bytes(),
        })
    }

    /// Return an extent to the free list, coalescing with neighbours.
    ///
    /// Panics on double-free or overlap with an existing free extent.
    pub fn free(&mut self, addr: u64, size: u64) {
        assert!(size > 0, "zero-sized device free");
        assert!(
            addr + size <= self.total,
            "free of [{addr}, {}) beyond device memory of {} bytes",
            addr + size,
            self.total
        );
        let pos = self.free.partition_point(|&(a, _)| a < addr);
        if let Some(&(next_addr, _)) = self.free.get(pos) {
            assert!(
                addr + size <= next_addr,
                "double free / overlap with free extent at {next_addr}"
            );
        }
        if pos > 0 {
            let (prev_addr, prev_size) = self.free[pos - 1];
            assert!(
                prev_addr + prev_size <= addr,
                "double free / overlap with free extent at {prev_addr}"
            );
        }
        self.free.insert(pos, (addr, size));
        // Coalesce with the successor, then the predecessor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = DeviceAllocator::new(1000);
        let p = a.alloc(400).unwrap();
        assert_eq!(p, 0);
        assert_eq!(a.free_bytes(), 600);
        a.free(p, 400);
        assert_eq!(a.free_bytes(), 1000);
        assert_eq!(a.largest_free_block(), 1000);
    }

    #[test]
    fn first_fit_reuses_earliest_gap() {
        let mut a = DeviceAllocator::new(1000);
        let p0 = a.alloc(100).unwrap();
        let _p1 = a.alloc(100).unwrap();
        a.free(p0, 100);
        let p2 = a.alloc(50).unwrap();
        assert_eq!(p2, 0, "first fit should reuse the hole at 0");
    }

    #[test]
    fn oom_reports_fragmentation() {
        let mut a = DeviceAllocator::new(300);
        let p0 = a.alloc(100).unwrap();
        let _p1 = a.alloc(100).unwrap();
        let _p2 = a.alloc(100).unwrap();
        a.free(p0, 100);
        let err = a.alloc(150).unwrap_err();
        assert_eq!(err.free_total, 100);
        assert_eq!(err.largest_free_block, 100);
        assert_eq!(err.requested, 150);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn coalescing_merges_adjacent_extents() {
        let mut a = DeviceAllocator::new(300);
        let p0 = a.alloc(100).unwrap();
        let p1 = a.alloc(100).unwrap();
        let p2 = a.alloc(100).unwrap();
        a.free(p0, 100);
        a.free(p2, 100);
        a.free(p1, 100); // merges everything back
        assert_eq!(a.largest_free_block(), 300);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = DeviceAllocator::new(100);
        let p = a.alloc(50).unwrap();
        a.free(p, 50);
        a.free(p, 50);
    }

    #[test]
    #[should_panic(expected = "beyond device memory")]
    fn free_out_of_range_panics() {
        let mut a = DeviceAllocator::new(100);
        a.free(90, 20);
    }

    #[test]
    fn exhausts_exactly() {
        let mut a = DeviceAllocator::new(100);
        a.alloc(60).unwrap();
        a.alloc(40).unwrap();
        assert_eq!(a.free_bytes(), 0);
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn zero_capacity_allocator() {
        let mut a = DeviceAllocator::new(0);
        assert_eq!(a.free_bytes(), 0);
        assert!(a.alloc(1).is_err());
    }

    proptest! {
        /// Random alloc/free sequences: allocations never overlap, and the
        /// free-byte accounting is conserved.
        #[test]
        fn prop_no_overlap_and_conservation(ops in proptest::collection::vec((any::<bool>(), 1u64..128), 1..60)) {
            let total = 1024u64;
            let mut a = DeviceAllocator::new(total);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (do_alloc, size) in ops {
                if do_alloc || live.is_empty() {
                    if let Ok(addr) = a.alloc(size) {
                        for &(la, ls) in &live {
                            prop_assert!(addr + size <= la || la + ls <= addr,
                                "allocation [{addr},{}) overlaps live [{la},{})", addr+size, la+ls);
                        }
                        live.push((addr, size));
                    }
                } else {
                    let (addr, sz) = live.swap_remove(size as usize % live.len());
                    a.free(addr, sz);
                }
                let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
                prop_assert_eq!(a.free_bytes() + live_bytes, total);
            }
            // Releasing everything restores one maximal block.
            for (addr, sz) in live.drain(..) {
                a.free(addr, sz);
            }
            prop_assert_eq!(a.largest_free_block(), total);
        }
    }
}
