//! Device memory: the allocator and the integrity book.
//!
//! A first-fit free-list allocator over the simulated device address space,
//! with coalescing on free — the behaviour behind `malloc_device` /
//! `free_device` / `mem_get_info`. The accounting is what matters: TiDA-acc
//! sizes its device slot pool by querying free memory exactly as the paper's
//! `TileAcc` calls `cudaMemGetInfo`.
//!
//! [`IntegrityBook`] is the end-to-end transfer-integrity layer that sits on
//! top of the (non-ECC) device DRAM model: per-buffer FNV-1a digests recorded
//! at every landing write, verified before every read-side consumer, with
//! bounded retransmission from the authoritative side and explicit poison
//! tracking when repair is impossible. It runs inside data effects, so it is
//! pure host-side bookkeeping: it never submits operations and never changes
//! the simulated schedule.

use crate::fault::CorruptVerdict;
use memslab::Slab;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Why a device allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    pub requested: u64,
    pub largest_free_block: u64,
    pub free_total: u64,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, largest free block {} bytes, {} bytes free in total",
            self.requested, self.largest_free_block, self.free_total
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// First-fit free-list allocator with coalescing.
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    total: u64,
    /// Free extents as (addr, size), sorted by address, non-adjacent.
    free: Vec<(u64, u64)>,
}

impl DeviceAllocator {
    pub fn new(total: u64) -> Self {
        DeviceAllocator {
            total,
            free: if total > 0 { vec![(0, total)] } else { vec![] },
        }
    }

    /// Total device memory in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Free device memory in bytes (sum over all free extents).
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s).sum()
    }

    /// Largest single allocatable block.
    pub fn largest_free_block(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }

    /// Allocate `size` bytes; returns the base address.
    pub fn alloc(&mut self, size: u64) -> Result<u64, OutOfDeviceMemory> {
        assert!(size > 0, "zero-sized device allocation");
        for i in 0..self.free.len() {
            let (addr, avail) = self.free[i];
            if avail >= size {
                if avail == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (addr + size, avail - size);
                }
                return Ok(addr);
            }
        }
        Err(OutOfDeviceMemory {
            requested: size,
            largest_free_block: self.largest_free_block(),
            free_total: self.free_bytes(),
        })
    }

    /// Return an extent to the free list, coalescing with neighbours.
    ///
    /// Panics on double-free or overlap with an existing free extent.
    pub fn free(&mut self, addr: u64, size: u64) {
        assert!(size > 0, "zero-sized device free");
        assert!(
            addr + size <= self.total,
            "free of [{addr}, {}) beyond device memory of {} bytes",
            addr + size,
            self.total
        );
        let pos = self.free.partition_point(|&(a, _)| a < addr);
        if let Some(&(next_addr, _)) = self.free.get(pos) {
            assert!(
                addr + size <= next_addr,
                "double free / overlap with free extent at {next_addr}"
            );
        }
        if pos > 0 {
            let (prev_addr, prev_size) = self.free[pos - 1];
            assert!(
                prev_addr + prev_size <= addr,
                "double free / overlap with free extent at {prev_addr}"
            );
        }
        self.free.insert(pos, (addr, size));
        // Coalesce with the successor, then the predecessor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }
}

/// Counters of the transfer-integrity layer. Detection and repair happen
/// inside data effects, so the counters are current after any host
/// synchronization point (`finish`, `stream_synchronize`, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Digest verifications performed (transfer completions and read-side
    /// pre-checks).
    pub verified: u64,
    /// Digest mismatches observed (in-flight flips caught at completion,
    /// resident strikes caught by the next consumer).
    pub detected: u64,
    /// Corruption events that ended with bit-identical data (successful
    /// retransmission or re-copy from the authoritative side).
    pub repaired: u64,
    /// Corruption events that exhausted their repair budget: the
    /// destination is poisoned and the poison propagates to every
    /// downstream consumer until an authoritative overwrite.
    pub unrepaired: u64,
}

/// The authoritative host-side source of a *clean* device buffer: where its
/// bytes were last loaded from, and the digest they had then. While the
/// entry exists the device copy is redundant, so resident corruption can be
/// repaired by re-copying. A kernel write invalidates it (the device copy
/// becomes the only one — dirty in cache terms).
struct Origin {
    slab: Slab,
    off: usize,
    len: usize,
    digest: Option<u64>,
}

/// Per-buffer integrity bookkeeping for one [`crate::GpuSystem`].
///
/// Keys are raw buffer indices (`DeviceBuffer::index` / `HostBuffer::index`).
/// All methods run inside scheduler data effects, in dependency order, which
/// is exactly the order the modelled DMA engines and kernels touch the data.
pub(crate) struct IntegrityBook {
    /// Whether digests are computed and verified. On by default; turning it
    /// off skips the digest arithmetic (the overhead being measured by the
    /// `figures -- integrity` benchmark) but keeps the injected-corruption
    /// data behaviour identical so results never silently diverge.
    enabled: bool,
    /// Last known-good whole-buffer digest per device buffer (backed runs
    /// only; virtual slabs have no bytes to digest).
    digests: HashMap<usize, u64>,
    /// Authoritative host source per clean device buffer.
    origins: HashMap<usize, Origin>,
    poisoned_dev: HashSet<usize>,
    poisoned_host: HashSet<usize>,
    stats: IntegrityStats,
}

impl IntegrityBook {
    pub(crate) fn new() -> Self {
        IntegrityBook {
            enabled: true,
            digests: HashMap::new(),
            origins: HashMap::new(),
            poisoned_dev: HashSet::new(),
            poisoned_host: HashSet::new(),
            stats: IntegrityStats::default(),
        }
    }

    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn stats(&self) -> IntegrityStats {
        self.stats
    }

    pub(crate) fn device_poisoned(&self, idx: usize) -> bool {
        self.poisoned_dev.contains(&idx)
    }

    pub(crate) fn host_poisoned(&self, idx: usize) -> bool {
        self.poisoned_host.contains(&idx)
    }

    /// The caller restored authoritative contents into a host buffer (e.g.
    /// from a checkpoint): clear its poison mark.
    pub(crate) fn clear_host_poison(&mut self, idx: usize) {
        self.poisoned_host.remove(&idx);
    }

    /// Account a copy whose data effect was elided: on an unbacked platform
    /// with no corruption scheduled, every slab is virtual and every poison
    /// set provably stays empty, so the only observable action a transfer
    /// effect performs is this counter bump. Must mirror what
    /// `transfer_with_retransmits` does on a clean verdict.
    pub(crate) fn note_passive_copy(&mut self) {
        if self.enabled {
            self.stats.verified += 1;
        }
    }

    /// Run one transfer attempt plus the in-flight corruption / verify /
    /// retransmit loop the verdict prescribes. Returns `true` when the
    /// destination range ended poisoned (every attempt corrupted).
    ///
    /// The copy is re-issued from `src` — the authoritative side of the
    /// transfer — up to the retransmit budget the verdict already charged to
    /// the engine at enqueue time, so data repair here never changes timing.
    fn transfer_with_retransmits(
        &mut self,
        dst: &Slab,
        dst_off: usize,
        src: &Slab,
        src_off: usize,
        len: usize,
        corrupt: Option<CorruptVerdict>,
    ) -> bool {
        memslab::copy(dst, dst_off, src, src_off, len);
        if self.enabled {
            self.stats.verified += 1;
        }
        let Some(c) = corrupt else {
            return false;
        };
        let mut unrepaired = false;
        for attempt in 0..c.corrupt_attempts {
            // Each corrupted attempt lands a different seeded flip.
            let strike = c
                .strike
                .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let flipped = dst.flip_bit(strike, dst_off, len);
            if self.enabled {
                // End-to-end check: sender-side digest vs what landed. On
                // backed runs this really recomputes both; the mismatch is
                // guaranteed because the flip targets a mantissa bit.
                if flipped {
                    let expected = src.digest_range(src_off, len);
                    let observed = dst.digest_range(dst_off, len);
                    debug_assert_ne!(expected, observed, "injected flip must be visible");
                }
                self.stats.detected += 1;
                self.stats.verified += 1;
            }
            let last = attempt + 1 == c.corrupt_attempts;
            if last && c.unrepaired {
                unrepaired = true;
            } else {
                // Retransmit from the authoritative side (engine time for
                // this was charged at enqueue).
                memslab::copy(dst, dst_off, src, src_off, len);
            }
        }
        if c.corrupt_attempts > 0 && self.enabled {
            if unrepaired {
                self.stats.unrepaired += 1;
            } else {
                self.stats.repaired += 1;
            }
        }
        unrepaired
    }

    /// Read-side pre-check of a device buffer: verify its current bytes
    /// against the last recorded digest and repair from the authoritative
    /// origin when they diverge (a resident strike on a clean slot).
    /// Returns `true` when the buffer is (or became) poisoned.
    fn verify_device(&mut self, idx: usize, slab: &Slab) -> bool {
        if self.poisoned_dev.contains(&idx) {
            return true;
        }
        if !self.enabled {
            return false;
        }
        let (Some(expected), Some(now)) = (self.digests.get(&idx).copied(), slab.digest()) else {
            return false;
        };
        self.stats.verified += 1;
        if expected == now {
            return false;
        }
        self.stats.detected += 1;
        // Quarantine-and-retransmit: if the host still holds the
        // authoritative bytes (clean slot), re-copy them and re-verify.
        if let Some(o) = self.origins.get(&idx) {
            if o.digest.is_some() && o.slab.digest_range(o.off, o.len) == o.digest {
                memslab::copy(slab, 0, &o.slab, o.off, o.len);
                if slab.digest() == Some(expected) {
                    self.stats.repaired += 1;
                    return false;
                }
            }
        }
        // Dirty (or stale-origin) slot: the device held the only copy.
        self.stats.unrepaired += 1;
        self.poisoned_dev.insert(idx);
        self.origins.remove(&idx);
        self.digests.remove(&idx);
        true
    }

    /// Record the post-write state of a device buffer after a clean landing
    /// write covering `dst_off..dst_off+len`.
    fn record_device_write(&mut self, idx: usize, slab: &Slab, covers_all: bool) {
        if covers_all {
            self.poisoned_dev.remove(&idx);
        }
        if self.enabled {
            match slab.digest() {
                Some(d) => {
                    self.digests.insert(idx, d);
                }
                None => {
                    self.digests.remove(&idx);
                }
            }
        }
    }

    /// H2D landing: copy + in-flight corruption handling + bookkeeping,
    /// then any scheduled resident strike on the settled slot.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn h2d_effect(
        &mut self,
        dst: &Slab,
        dst_idx: usize,
        dst_off: usize,
        src: &Slab,
        src_idx: usize,
        src_off: usize,
        len: usize,
        corrupt: Option<CorruptVerdict>,
    ) {
        let covers_all = dst_off == 0 && len == dst.len();
        if !covers_all {
            // A partial landing (a ghost patch) leaves the rest of the slab
            // untouched: verify it first, or resident corruption there would
            // be blessed into the fresh post-landing digest.
            self.verify_device(dst_idx, dst);
        }
        let unrepaired = self.transfer_with_retransmits(dst, dst_off, src, src_off, len, corrupt);
        if unrepaired || self.poisoned_host.contains(&src_idx) {
            self.poisoned_dev.insert(dst_idx);
            self.origins.remove(&dst_idx);
            self.digests.remove(&dst_idx);
            return;
        }
        self.record_device_write(dst_idx, dst, covers_all);
        if covers_all && self.enabled {
            self.origins.insert(
                dst_idx,
                Origin {
                    slab: src.clone(),
                    off: src_off,
                    len,
                    digest: src.digest_range(src_off, len),
                },
            );
        } else if !covers_all {
            self.origins.remove(&dst_idx);
        }
        // A resident strike (non-ECC DRAM bit flip) lands after the digest
        // was recorded: the next consumer's pre-check sees the mismatch.
        if let Some(strike) = corrupt.and_then(|c| c.resident_strike) {
            dst.flip_bit(strike, 0, dst.len());
        }
    }

    /// D2H landing: pre-verify the device source, copy + in-flight
    /// corruption handling, propagate poison to the host destination.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn d2h_effect(
        &mut self,
        dst: &Slab,
        dst_idx: usize,
        dst_off: usize,
        src: &Slab,
        src_idx: usize,
        src_off: usize,
        len: usize,
        corrupt: Option<CorruptVerdict>,
    ) {
        let src_bad = self.verify_device(src_idx, src);
        let unrepaired = self.transfer_with_retransmits(dst, dst_off, src, src_off, len, corrupt);
        if src_bad || unrepaired {
            self.poisoned_host.insert(dst_idx);
        } else if dst_off == 0 && len == dst.len() {
            // A clean full overwrite restores the host buffer.
            self.poisoned_host.remove(&dst_idx);
        }
    }

    /// Device→device copy (same-device `d2d` or peer `p2p`): pre-verify the
    /// source, copy, and carry poison across. The destination becomes
    /// device-sourced, so it loses any host origin.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dev_copy_effect(
        &mut self,
        dst: &Slab,
        dst_idx: usize,
        dst_off: usize,
        src: &Slab,
        src_idx: usize,
        src_off: usize,
        len: usize,
    ) {
        let src_bad = self.verify_device(src_idx, src);
        if !(dst_off == 0 && len == dst.len()) {
            // Same partial-write rule as `h2d_effect`: check the untouched
            // remainder before the new digest is recorded over it.
            self.verify_device(dst_idx, dst);
        }
        memslab::copy(dst, dst_off, src, src_off, len);
        if self.enabled {
            self.stats.verified += 1;
        }
        if src_bad {
            self.poisoned_dev.insert(dst_idx);
            self.origins.remove(&dst_idx);
            self.digests.remove(&dst_idx);
            return;
        }
        self.record_device_write(dst_idx, dst, dst_off == 0 && len == dst.len());
        self.origins.remove(&dst_idx);
    }

    /// Kernel pre-check: verify every device buffer the kernel reads.
    /// Returns whether any input is poisoned.
    pub(crate) fn kernel_pre(&mut self, reads: &[(usize, Slab)], writes: &[(usize, Slab)]) -> bool {
        // Write targets are verified too: a kernel that writes only part of
        // a slab (a ghost-zone update) gets a fresh whole-slab digest in
        // `kernel_post`, which would otherwise launder resident corruption
        // sitting in the untouched bytes. Poison found on a write target
        // sticks to that buffer (a partial overwrite cannot clear it) but
        // does not spread to the kernel's other outputs — those derive from
        // the read set.
        for (idx, slab) in writes {
            self.verify_device(*idx, slab);
        }
        let mut poisoned = false;
        for (idx, slab) in reads {
            poisoned |= self.verify_device(*idx, slab);
        }
        poisoned
    }

    /// Kernel post-processing: written buffers become dirty (no host
    /// origin); poisoned inputs poison every output; an optional resident
    /// strike then flips a bit in the first written buffer — dirty data, so
    /// the next consumer finds it unrepairable.
    ///
    /// `undeclared` marks a kernel that ran a data effect without declaring
    /// its write set. Such a kernel may have mutated any device buffer, so
    /// every recorded digest and origin is forfeit — otherwise a later
    /// verification pass would mistake the legitimate (but untracked) write
    /// for resident corruption and "repair" it away.
    pub(crate) fn kernel_post(
        &mut self,
        inputs_poisoned: bool,
        writes: &[(usize, Slab)],
        undeclared: bool,
        strike: Option<u64>,
    ) {
        if undeclared {
            self.digests.clear();
            self.origins.clear();
        }
        for (idx, slab) in writes {
            self.origins.remove(idx);
            if inputs_poisoned {
                self.poisoned_dev.insert(*idx);
                self.digests.remove(idx);
            } else {
                // A kernel write never clears existing poison: we cannot
                // know it overwrote every poisoned byte.
                if self.enabled {
                    match slab.digest() {
                        Some(d) => {
                            self.digests.insert(*idx, d);
                        }
                        None => {
                            self.digests.remove(idx);
                        }
                    }
                }
            }
        }
        if let Some(strike) = strike {
            if let Some((_, slab)) = writes.first() {
                if !slab.is_empty() {
                    slab.flip_bit(strike, 0, slab.len());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = DeviceAllocator::new(1000);
        let p = a.alloc(400).unwrap();
        assert_eq!(p, 0);
        assert_eq!(a.free_bytes(), 600);
        a.free(p, 400);
        assert_eq!(a.free_bytes(), 1000);
        assert_eq!(a.largest_free_block(), 1000);
    }

    #[test]
    fn first_fit_reuses_earliest_gap() {
        let mut a = DeviceAllocator::new(1000);
        let p0 = a.alloc(100).unwrap();
        let _p1 = a.alloc(100).unwrap();
        a.free(p0, 100);
        let p2 = a.alloc(50).unwrap();
        assert_eq!(p2, 0, "first fit should reuse the hole at 0");
    }

    #[test]
    fn oom_reports_fragmentation() {
        let mut a = DeviceAllocator::new(300);
        let p0 = a.alloc(100).unwrap();
        let _p1 = a.alloc(100).unwrap();
        let _p2 = a.alloc(100).unwrap();
        a.free(p0, 100);
        let err = a.alloc(150).unwrap_err();
        assert_eq!(err.free_total, 100);
        assert_eq!(err.largest_free_block, 100);
        assert_eq!(err.requested, 150);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn coalescing_merges_adjacent_extents() {
        let mut a = DeviceAllocator::new(300);
        let p0 = a.alloc(100).unwrap();
        let p1 = a.alloc(100).unwrap();
        let p2 = a.alloc(100).unwrap();
        a.free(p0, 100);
        a.free(p2, 100);
        a.free(p1, 100); // merges everything back
        assert_eq!(a.largest_free_block(), 300);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = DeviceAllocator::new(100);
        let p = a.alloc(50).unwrap();
        a.free(p, 50);
        a.free(p, 50);
    }

    #[test]
    #[should_panic(expected = "beyond device memory")]
    fn free_out_of_range_panics() {
        let mut a = DeviceAllocator::new(100);
        a.free(90, 20);
    }

    #[test]
    fn exhausts_exactly() {
        let mut a = DeviceAllocator::new(100);
        a.alloc(60).unwrap();
        a.alloc(40).unwrap();
        assert_eq!(a.free_bytes(), 0);
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn zero_capacity_allocator() {
        let mut a = DeviceAllocator::new(0);
        assert_eq!(a.free_bytes(), 0);
        assert!(a.alloc(1).is_err());
    }

    fn filled(len: usize) -> Slab {
        let s = Slab::new(len, true);
        s.fill_with(|i| i as f64 * 1.25 + 3.0);
        s
    }

    fn verdict(corrupt_attempts: u32, unrepaired: bool) -> CorruptVerdict {
        CorruptVerdict {
            corrupt_attempts,
            unrepaired,
            strike: 0x1234_5678_9abc_def0,
            resident_strike: None,
        }
    }

    #[test]
    fn in_flight_corruption_is_detected_and_retransmitted() {
        let mut b = IntegrityBook::new();
        let host = filled(64);
        let dev = Slab::new(64, true);
        b.h2d_effect(&dev, 0, 0, &host, 0, 0, 64, Some(verdict(2, false)));
        assert_eq!(dev.digest(), host.digest(), "repair is bit-identical");
        assert!(!b.device_poisoned(0));
        let s = b.stats();
        assert_eq!(s.detected, 2);
        assert_eq!(s.repaired, 1);
        assert_eq!(s.unrepaired, 0);
    }

    #[test]
    fn exhausted_retransmits_poison_and_propagate() {
        let mut b = IntegrityBook::new();
        let host = filled(32);
        let dev = Slab::new(32, true);
        b.h2d_effect(&dev, 0, 0, &host, 0, 0, 32, Some(verdict(3, true)));
        assert!(b.device_poisoned(0));
        assert_eq!(b.stats().unrepaired, 1);
        // The poison rides the writeback to the host...
        let out = Slab::new(32, true);
        b.d2h_effect(&out, 5, 0, &dev, 0, 0, 32, None);
        assert!(b.host_poisoned(5));
        // ...until an authoritative full reload clears the device side.
        b.h2d_effect(&dev, 0, 0, &host, 0, 0, 32, None);
        assert!(!b.device_poisoned(0));
        b.d2h_effect(&out, 5, 0, &dev, 0, 0, 32, None);
        assert!(
            !b.host_poisoned(5),
            "clean full overwrite restores the host"
        );
    }

    #[test]
    fn resident_strike_on_clean_slot_repairs_from_origin() {
        let mut b = IntegrityBook::new();
        let host = filled(48);
        let dev = Slab::new(48, true);
        let strike = CorruptVerdict {
            resident_strike: Some(7),
            ..verdict(0, false)
        };
        b.h2d_effect(&dev, 0, 0, &host, 0, 0, 48, Some(strike));
        assert_ne!(dev.digest(), host.digest(), "strike landed after settle");
        // Next consumer pre-checks, catches the flip, re-copies from the
        // authoritative host origin.
        let out = Slab::new(48, true);
        b.d2h_effect(&out, 0, 0, &dev, 0, 0, 48, None);
        assert_eq!(out.digest(), host.digest(), "consumer saw repaired bytes");
        assert!(!b.device_poisoned(0));
        assert!(!b.host_poisoned(0));
        assert_eq!(b.stats().repaired, 1);
    }

    #[test]
    fn dirty_strike_is_unrepairable_and_poisons_writeback() {
        let mut b = IntegrityBook::new();
        let host = filled(16);
        let dev = Slab::new(16, true);
        b.h2d_effect(&dev, 0, 0, &host, 0, 0, 16, None);
        // Kernel writes the buffer (clears the origin), then DRAM flips a
        // bit in the freshly written data.
        assert!(!b.kernel_pre(&[(0, dev.clone())], &[]));
        dev.fill_with(|i| i as f64 * 2.0);
        b.kernel_post(false, &[(0, dev.clone())], false, Some(99));
        let out = Slab::new(16, true);
        b.d2h_effect(&out, 0, 0, &dev, 0, 0, 16, None);
        assert!(b.device_poisoned(0), "dirty slot had the only copy");
        assert!(b.host_poisoned(0), "stale host copy must not be trusted");
        assert_eq!(b.stats().unrepaired, 1);
    }

    #[test]
    fn poisoned_inputs_poison_kernel_outputs() {
        let mut b = IntegrityBook::new();
        let host = filled(8);
        let a = Slab::new(8, true);
        let o = Slab::new(8, true);
        b.h2d_effect(&a, 0, 0, &host, 0, 0, 8, Some(verdict(3, true)));
        let poisoned = b.kernel_pre(&[(0, a.clone())], &[]);
        assert!(poisoned);
        b.kernel_post(poisoned, &[(1, o.clone())], false, None);
        assert!(b.device_poisoned(1));
    }

    #[test]
    fn virtual_slabs_keep_counters_but_skip_digests() {
        let mut b = IntegrityBook::new();
        let host = Slab::new(64, false);
        let dev = Slab::new(64, false);
        b.h2d_effect(&dev, 0, 0, &host, 0, 0, 64, Some(verdict(1, false)));
        let s = b.stats();
        assert_eq!(s.detected, 1, "verdict-driven counters are backing-blind");
        assert_eq!(s.repaired, 1);
    }

    proptest! {
        /// Random alloc/free sequences: allocations never overlap, and the
        /// free-byte accounting is conserved.
        #[test]
        fn prop_no_overlap_and_conservation(ops in proptest::collection::vec((any::<bool>(), 1u64..128), 1..60)) {
            let total = 1024u64;
            let mut a = DeviceAllocator::new(total);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (do_alloc, size) in ops {
                if do_alloc || live.is_empty() {
                    if let Ok(addr) = a.alloc(size) {
                        for &(la, ls) in &live {
                            prop_assert!(addr + size <= la || la + ls <= addr,
                                "allocation [{addr},{}) overlaps live [{la},{})", addr+size, la+ls);
                        }
                        live.push((addr, size));
                    }
                } else {
                    let (addr, sz) = live.swap_remove(size as usize % live.len());
                    a.free(addr, sz);
                }
                let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
                prop_assert_eq!(a.free_bytes() + live_bytes, total);
            }
            // Releasing everything restores one maximal block.
            for (addr, sz) in live.drain(..) {
                a.free(addr, sz);
            }
            prop_assert_eq!(a.largest_free_block(), total);
        }
    }
}
