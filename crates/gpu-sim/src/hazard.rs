//! Stream-hazard detection: a vector-clock happens-before tracker.
//!
//! The interval checker in [`crate::GpuSystem::check_hazards`] flags
//! conflicting accesses that *overlapped in simulated time* — but an
//! engine with capacity 1 serializes everything, so a program whose
//! correctness silently depends on engine serialization (instead of
//! stream/event ordering) passes it. This module closes that gap: it
//! tracks the *semantic* ordering the program actually established —
//! stream FIFO edges, `record_event`/`stream_wait_event` edges, and
//! host-blocking synchronization — as vector clocks, and flags every
//! conflicting access pair the program left unordered, whether or not
//! the schedule happened to separate them in time.
//!
//! The tracker observes every operation at enqueue (the edges are fully
//! known then; the scheduler never adds ordering beyond them) and runs in
//! two modes:
//!
//! * **cheap** (always on): per-kind counters, surfaced through
//!   [`crate::GpuSystem::hazard_counters`] and the run report;
//! * **deep**: every hazard is recorded with both operations' labels,
//!   the buffer, and its position in enqueue order, and can be exported
//!   as a replayable [`desim::Trace`] whose categories are the hazard
//!   kinds — deterministic for a fixed program and seed.
//!
//! The runtime feeds one extra edge the scheduler cannot see: the cache
//! list. [`crate::GpuSystem::note_evicted`] marks a device buffer whose
//! slot was evicted; a later read without an intervening write is a
//! stale-cache-list read even though no scheduler-level race exists.

use crate::system::BufKey;
use desim::{OpId, SimTime, Sym, Trace};

/// What kind of ordering violation a hazard is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardKind {
    /// A read not ordered after the transfer that produces its data
    /// (e.g. a kernel consuming a cache slot before its H2D landed).
    UseBeforeTransfer,
    /// A read not ordered after a kernel that writes the same buffer.
    ReadWriteRace,
    /// A write not ordered after earlier reads of the same buffer
    /// (e.g. reloading a slot while a foreign consumer still reads it).
    WriteAfterRead,
    /// Two unordered writes to the same buffer.
    WriteAfterWrite,
    /// A read of a buffer whose slot the cache list already evicted,
    /// with no reload in between.
    StaleCacheRead,
    /// An unordered conflict where either side is a ghost-exchange
    /// operation (fill, pack, unpack, batched gather).
    GhostOrdering,
}

impl HazardKind {
    /// Stable name, used as the trace category in deep mode.
    pub fn name(self) -> &'static str {
        match self {
            HazardKind::UseBeforeTransfer => "use-before-transfer",
            HazardKind::ReadWriteRace => "read-write-race",
            HazardKind::WriteAfterRead => "write-after-read",
            HazardKind::WriteAfterWrite => "write-after-write",
            HazardKind::StaleCacheRead => "stale-cache-read",
            HazardKind::GhostOrdering => "ghost-ordering",
        }
    }
}

/// Per-kind hazard counters (the always-on cheap mode).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HazardCounters {
    pub use_before_transfer: u64,
    pub read_write_race: u64,
    pub write_after_read: u64,
    pub write_after_write: u64,
    pub stale_cache_read: u64,
    pub ghost_ordering: u64,
}

impl HazardCounters {
    pub fn total(&self) -> u64 {
        self.use_before_transfer
            + self.read_write_race
            + self.write_after_read
            + self.write_after_write
            + self.stale_cache_read
            + self.ghost_ordering
    }

    pub fn any(&self) -> bool {
        self.total() > 0
    }

    fn bump(&mut self, kind: HazardKind) {
        match kind {
            HazardKind::UseBeforeTransfer => self.use_before_transfer += 1,
            HazardKind::ReadWriteRace => self.read_write_race += 1,
            HazardKind::WriteAfterRead => self.write_after_read += 1,
            HazardKind::WriteAfterWrite => self.write_after_write += 1,
            HazardKind::StaleCacheRead => self.stale_cache_read += 1,
            HazardKind::GhostOrdering => self.ghost_ordering += 1,
        }
    }
}

/// One detected hazard (deep mode).
#[derive(Debug, Clone)]
pub struct HazardRecord {
    pub kind: HazardKind,
    pub buffer: BufKey,
    /// Label of the earlier access (the one already on record).
    pub first_label: String,
    /// Label of the access that completed the unordered pair.
    pub second_label: String,
    pub first_op: OpId,
    pub second_op: OpId,
    /// Position of the detection in enqueue order (deterministic).
    pub enqueue_seq: u64,
    /// Host clock at the enqueue that completed the pair.
    pub at: SimTime,
}

/// A buffer access direction, as the tracker sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Read,
    Write,
}

/// One recorded access: enough to decide happens-before against any later
/// operation's clock. `Copy` — labels are interned, so recording an access
/// allocates nothing.
#[derive(Debug, Clone, Copy)]
struct AccessInfo {
    op: OpId,
    /// Clock component the issuing stream owns.
    comp: usize,
    /// The issuing op's stamp in its own component.
    stamp: u64,
    label: Sym,
    category: Sym,
}

impl AccessInfo {
    /// Whether this access happens-before an op with clock `clock` (a
    /// component slice of `stride` length; components past the slice are
    /// implicitly zero).
    fn ordered_before(&self, clock: &[u64]) -> bool {
        clock.get(self.comp).copied().unwrap_or(0) >= self.stamp
    }
}

fn ghosty(label: &str) -> bool {
    label.contains("ghost") || label.contains("pack")
}

const TRANSFER_CATEGORIES: [&str; 6] = ["h2d", "d2h", "d2d", "p2p", "salvage", "uvm"];

/// The happens-before tracker. Owned by [`crate::GpuSystem`]; fed from
/// every enqueue and host-synchronization point.
pub(crate) struct HazardTracker {
    deep: bool,
    /// Per-op vector clocks in one flat arena: op `i`'s clock is the
    /// `stride`-long row at `i * stride` (scheduler ops are numbered
    /// sequentially). Ops submitted without an `observe_op` call leave
    /// all-zero rows, which join as no-ops — exactly "no edges known".
    /// One arena beats per-op clock values: observing an op is a row copy
    /// and a few row maxes, with no allocation and no pointer chasing.
    clocks: Vec<u64>,
    /// Components per clock row: max stream component seen + 1. Grows (and
    /// re-strides the arena) when a new stream appears — setup-time only.
    stride: usize,
    /// What the host has observed complete; joined into every new op
    /// (an enqueue happens-after everything the host synchronized on).
    host: Vec<u64>,
    /// Reusable row buffer for the op clock under construction.
    scratch: Vec<u64>,
    /// Per-buffer access state, dense-indexed by buffer kind and index —
    /// buffer ids are small sequential allocator indices, so a direct
    /// table beats hashing `BufKey`s on every access (several lookups per
    /// enqueued op).
    bufs: [Vec<BufState>; 3],
    counters: HazardCounters,
    records: Vec<HazardRecord>,
    seq: u64,
}

/// Access state of one buffer: last writer, readers since that write, and
/// whether the runtime's cache list evicted it with no reload since.
#[derive(Default)]
struct BufState {
    writer: Option<AccessInfo>,
    /// Readers since the last write. Cleared — capacity kept — on write.
    readers: Vec<AccessInfo>,
    evicted: Option<Sym>,
}

/// Dense table coordinates of a `BufKey`.
fn buf_coords(key: BufKey) -> (usize, usize) {
    match key {
        BufKey::Device(i) => (0, i),
        BufKey::Host(i) => (1, i),
        BufKey::Managed(i) => (2, i),
    }
}

impl HazardTracker {
    pub(crate) fn new() -> Self {
        HazardTracker {
            deep: false,
            clocks: Vec::new(),
            stride: 1,
            host: vec![0],
            scratch: vec![0],
            bufs: [Vec::new(), Vec::new(), Vec::new()],
            counters: HazardCounters::default(),
            records: Vec::new(),
            seq: 0,
        }
    }

    /// Ensure clock rows are wide enough for component `comp`, re-striding
    /// the arena in place if a new stream appeared (setup-time rarity).
    fn ensure_comp(&mut self, comp: usize) {
        if comp < self.stride {
            return;
        }
        let old = self.stride;
        let new = comp + 1;
        let rows = self.clocks.len() / old;
        let mut widened = vec![0u64; rows * new];
        for r in 0..rows {
            widened[r * new..r * new + old].copy_from_slice(&self.clocks[r * old..(r + 1) * old]);
        }
        self.clocks = widened;
        self.host.resize(new, 0);
        self.scratch.resize(new, 0);
        self.stride = new;
    }

    pub(crate) fn set_deep(&mut self, on: bool) {
        self.deep = on;
    }

    pub(crate) fn counters(&self) -> HazardCounters {
        self.counters
    }

    pub(crate) fn records(&self) -> &[HazardRecord] {
        &self.records
    }

    /// Observe one submitted operation: fold its dependency edges and the
    /// host's knowledge into its clock, then check its accesses.
    /// `comp` is the clock component of the issuing stream (stream index
    /// + 1; component 0 belongs to the host).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn observe_op(
        &mut self,
        op: OpId,
        comp: usize,
        deps: &[OpId],
        label: impl Into<Sym>,
        category: impl Into<Sym>,
        accesses: &[(BufKey, Dir)],
        now: SimTime,
    ) {
        let (label, category) = (label.into(), category.into());
        self.ensure_comp(comp);
        let stride = self.stride;
        let mut clock = std::mem::take(&mut self.scratch);
        clock.copy_from_slice(&self.host);
        for d in deps {
            let row = d.0 * stride;
            if row + stride <= self.clocks.len() {
                for (c, &v) in clock.iter_mut().zip(&self.clocks[row..row + stride]) {
                    *c = (*c).max(v);
                }
            }
        }
        clock[comp] += 1;
        let stamp = clock[comp];
        for &(key, dir) in accesses {
            let info = AccessInfo {
                op,
                comp,
                stamp,
                label,
                category,
            };
            match dir {
                Dir::Read => self.check_read(key, info, &clock, now),
                Dir::Write => self.check_write(key, info, &clock, now),
            }
        }
        if self.clocks.len() < (op.0 + 1) * stride {
            self.clocks.resize((op.0 + 1) * stride, 0);
        }
        self.clocks[op.0 * stride..(op.0 + 1) * stride].copy_from_slice(&clock);
        self.scratch = clock;
    }

    /// The host blocked until `op` completed: join its clock into the
    /// host's, ordering every later enqueue after it.
    pub(crate) fn host_joins(&mut self, op: OpId) {
        let stride = self.stride;
        let row = op.0 * stride;
        if row + stride <= self.clocks.len() {
            for (h, &v) in self.host.iter_mut().zip(&self.clocks[row..row + stride]) {
                *h = (*h).max(v);
            }
        }
    }

    /// The runtime's cache list dropped `key` from its slot; a read
    /// before the next write is a stale-cache-list read.
    pub(crate) fn note_evicted(&mut self, key: BufKey, label: impl Into<Sym>) {
        self.buf_state(key).evicted = Some(label.into());
    }

    /// The dense state slot for `key`, growing its kind's table on first
    /// sight of a new buffer index.
    fn buf_state(&mut self, key: BufKey) -> &mut BufState {
        let (t, i) = buf_coords(key);
        let table = &mut self.bufs[t];
        if table.len() <= i {
            table.resize_with(i + 1, BufState::default);
        }
        &mut table[i]
    }

    fn check_read(&mut self, key: BufKey, info: AccessInfo, clock: &[u64], now: SimTime) {
        let s = self.buf_state(key);
        let evicted = s.evicted;
        let writer = s.writer;
        s.readers.push(info);
        if let Some(evict_label) = evicted {
            self.report(
                HazardKind::StaleCacheRead,
                key,
                evict_label,
                info.label,
                info.op,
                info.op,
                now,
            );
        }
        if let Some(w) = writer {
            if !w.ordered_before(clock) {
                // Conflict classification is off the hot path — resolving
                // the interned labels here is fine.
                let kind = if ghosty(w.label.as_str())
                    || ghosty(w.category.as_str())
                    || ghosty(info.label.as_str())
                    || ghosty(info.category.as_str())
                {
                    HazardKind::GhostOrdering
                } else if TRANSFER_CATEGORIES.contains(&w.category.as_str()) {
                    HazardKind::UseBeforeTransfer
                } else {
                    HazardKind::ReadWriteRace
                };
                self.report(kind, key, w.label, info.label, w.op, info.op, now);
            }
        }
    }

    fn check_write(&mut self, key: BufKey, info: AccessInfo, clock: &[u64], now: SimTime) {
        let s = self.buf_state(key);
        let prev = s.writer;
        // Take the reader list out so conflicts can be reported while
        // iterating; its capacity goes back afterwards, so steady-state
        // writes allocate nothing.
        let mut readers = std::mem::take(&mut s.readers);
        s.writer = Some(info);
        s.evicted = None;
        if let Some(w) = prev {
            if !w.ordered_before(clock) {
                let kind = if ghosty(w.label.as_str()) || ghosty(info.label.as_str()) {
                    HazardKind::GhostOrdering
                } else {
                    HazardKind::WriteAfterWrite
                };
                self.report(kind, key, w.label, info.label, w.op, info.op, now);
            }
        }
        for r in readers.iter().filter(|r| !r.ordered_before(clock)) {
            let kind = if ghosty(r.label.as_str())
                || ghosty(r.category.as_str())
                || ghosty(info.label.as_str())
                || ghosty(info.category.as_str())
            {
                HazardKind::GhostOrdering
            } else {
                HazardKind::WriteAfterRead
            };
            self.report(kind, key, r.label, info.label, r.op, info.op, now);
        }
        readers.clear();
        self.buf_state(key).readers = readers;
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        kind: HazardKind,
        buffer: BufKey,
        first_label: Sym,
        second_label: Sym,
        first_op: OpId,
        second_op: OpId,
        now: SimTime,
    ) {
        self.counters.bump(kind);
        if self.deep {
            self.records.push(HazardRecord {
                kind,
                buffer,
                first_label: first_label.as_str().to_string(),
                second_label: second_label.as_str().to_string(),
                first_op,
                second_op,
                enqueue_seq: self.seq,
                at: now,
            });
        }
        self.seq += 1;
    }

    /// Export the deep-mode records as a replayable trace: one lane, one
    /// span per hazard (ordered by detection), category = hazard kind.
    /// Deterministic for a fixed program and seed.
    pub(crate) fn trace(&self) -> Trace {
        let mut trace = Trace::new(vec!["hazards".to_string()]);
        for r in &self.records {
            trace.push(desim::Span {
                engine: 0,
                server: 0,
                label: format!("{} ⇢ {} @{:?}", r.first_label, r.second_label, r.buffer),
                category: r.kind.name().to_string(),
                start: r.at,
                end: r.at + SimTime::from_us(1),
                seq: r.enqueue_seq,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Mint distinct OpIds through a real scheduler so the tracker sees
    // the same id type production code uses.
    fn mint(n: usize) -> Vec<OpId> {
        let mut sched = desim::Scheduler::new();
        let eng = sched.add_engine("x", 1);
        (0..n)
            .map(|_| sched.submit(desim::Op::on(eng, SimTime::from_us(1))))
            .collect()
    }

    #[test]
    fn ordered_stream_work_is_hazard_free() {
        let ids = mint(3);
        let mut t = HazardTracker::new();
        let buf = BufKey::Device(0);
        // h2d write -> kernel read -> d2h read, all chained by deps.
        t.observe_op(
            ids[0],
            1,
            &[],
            "H2D",
            "h2d",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(
            ids[1],
            1,
            &[ids[0]],
            "k",
            "kernel",
            &[(buf, Dir::Read)],
            SimTime::ZERO,
        );
        t.observe_op(
            ids[2],
            1,
            &[ids[1]],
            "D2H",
            "d2h",
            &[(buf, Dir::Read)],
            SimTime::ZERO,
        );
        assert!(!t.counters().any());
    }

    #[test]
    fn unordered_read_after_transfer_is_use_before_transfer() {
        let ids = mint(2);
        let mut t = HazardTracker::new();
        let buf = BufKey::Device(3);
        t.observe_op(
            ids[0],
            1,
            &[],
            "H2D",
            "h2d",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        // Different stream, no dep edge: the read may run first.
        t.observe_op(
            ids[1],
            2,
            &[],
            "k",
            "kernel",
            &[(buf, Dir::Read)],
            SimTime::ZERO,
        );
        assert_eq!(t.counters().use_before_transfer, 1);
        assert_eq!(t.counters().total(), 1);
    }

    #[test]
    fn host_sync_orders_cross_stream_work() {
        let ids = mint(2);
        let mut t = HazardTracker::new();
        let buf = BufKey::Device(1);
        t.observe_op(
            ids[0],
            1,
            &[],
            "H2D",
            "h2d",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        // stream_synchronize: the host saw the write complete.
        t.host_joins(ids[0]);
        t.observe_op(
            ids[1],
            2,
            &[],
            "k",
            "kernel",
            &[(buf, Dir::Read)],
            SimTime::ZERO,
        );
        assert!(!t.counters().any(), "host sync is a happens-before edge");
    }

    #[test]
    fn unordered_write_after_read_and_write_write() {
        let ids = mint(3);
        let mut t = HazardTracker::new();
        let buf = BufKey::Device(0);
        t.observe_op(
            ids[0],
            1,
            &[],
            "w0",
            "kernel",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(
            ids[1],
            1,
            &[ids[0]],
            "r",
            "kernel",
            &[(buf, Dir::Read)],
            SimTime::ZERO,
        );
        // Unordered second write from another stream: WAW with w0 is
        // cured by the read's dep? No — the write races BOTH the earlier
        // write (unordered) and the reader.
        t.observe_op(
            ids[2],
            2,
            &[],
            "w1",
            "kernel",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        assert_eq!(t.counters().write_after_write, 1);
        assert_eq!(t.counters().write_after_read, 1);
    }

    #[test]
    fn eviction_marks_stale_reads_until_rewrite() {
        let ids = mint(3);
        let mut t = HazardTracker::new();
        let buf = BufKey::Device(7);
        t.observe_op(
            ids[0],
            1,
            &[],
            "H2D",
            "h2d",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        t.note_evicted(buf, "evict");
        t.observe_op(
            ids[1],
            1,
            &[ids[0]],
            "k",
            "kernel",
            &[(buf, Dir::Read)],
            SimTime::ZERO,
        );
        assert_eq!(t.counters().stale_cache_read, 1, "read after eviction");
        // A reload clears the mark.
        t.observe_op(
            ids[2],
            1,
            &[ids[1]],
            "H2D",
            "h2d",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        assert_eq!(t.counters().stale_cache_read, 1);
    }

    #[test]
    fn ghost_labels_classify_as_ghost_ordering() {
        let ids = mint(2);
        let mut t = HazardTracker::new();
        let buf = BufKey::Device(2);
        t.observe_op(
            ids[0],
            1,
            &[],
            "ghost-batch",
            "kernel",
            &[(buf, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(
            ids[1],
            2,
            &[],
            "k",
            "kernel",
            &[(buf, Dir::Read)],
            SimTime::ZERO,
        );
        assert_eq!(t.counters().ghost_ordering, 1);
    }

    #[test]
    fn record_event_stream_ordering_fixes_stamp_collision() {
        // Regression for the `record_event` stamp-collision false negative:
        // the event marker must become the stream's tail so the next op on
        // the stream gets a *later* stamp than the event. If both shared a
        // stamp, a waiter joining the event's clock would falsely appear
        // ordered after work submitted *after* the event.
        let ids = mint(4);
        let (w0, ev, w1, r) = (ids[0], ids[1], ids[2], ids[3]);
        let (buf_a, buf_b) = (BufKey::Device(0), BufKey::Device(1));
        let mut t = HazardTracker::new();
        // Stream 1: write A, record event, write B *after the event*.
        t.observe_op(
            w0,
            1,
            &[],
            "wA",
            "kernel",
            &[(buf_a, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(ev, 1, &[w0], "event", "event", &[], SimTime::ZERO);
        t.observe_op(
            w1,
            1,
            &[ev],
            "wB",
            "kernel",
            &[(buf_b, Dir::Write)],
            SimTime::ZERO,
        );
        // Stream 2 waits on the event, then reads BOTH buffers. The event
        // covers the pre-event write only.
        t.observe_op(
            r,
            2,
            &[ev],
            "k",
            "kernel",
            &[(buf_a, Dir::Read), (buf_b, Dir::Read)],
            SimTime::ZERO,
        );
        assert_eq!(
            t.counters().read_write_race,
            1,
            "the post-event write must stay unordered w.r.t. the waiter"
        );

        // The broken stamping (next op chained to w0, not the event):
        // the waiter joins the event's clock and the post-event write now
        // *shares* the event's stamp — silent false negative.
        let ids = mint(4);
        let (w0, ev, w1, r) = (ids[0], ids[1], ids[2], ids[3]);
        let mut t = HazardTracker::new();
        t.observe_op(
            w0,
            1,
            &[],
            "wA",
            "kernel",
            &[(buf_a, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(ev, 1, &[w0], "event", "event", &[], SimTime::ZERO);
        t.observe_op(
            w1,
            1,
            &[w0],
            "wB",
            "kernel",
            &[(buf_b, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(
            r,
            2,
            &[ev],
            "k",
            "kernel",
            &[(buf_a, Dir::Read), (buf_b, Dir::Read)],
            SimTime::ZERO,
        );
        assert!(
            !t.counters().any(),
            "documents the collision: without stream-ordering the race is missed"
        );
    }

    #[test]
    fn host_sync_on_earlier_event_does_not_cover_later_stream_work() {
        // Two events on one stream racing a host sync: the host synchronizes
        // on the FIRST event only. Work recorded between the two events —
        // and the second event itself — stays unordered w.r.t. later
        // host-issued accesses.
        let ids = mint(5);
        let (w0, ev1, w1, ev2, host_op) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let (buf_a, buf_b) = (BufKey::Device(0), BufKey::Device(1));
        let mut t = HazardTracker::new();
        t.observe_op(
            w0,
            1,
            &[],
            "wA",
            "kernel",
            &[(buf_a, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(ev1, 1, &[w0], "event", "event", &[], SimTime::ZERO);
        t.observe_op(
            w1,
            1,
            &[ev1],
            "wB",
            "kernel",
            &[(buf_b, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(ev2, 1, &[w1], "event", "event", &[], SimTime::ZERO);
        // cudaEventSynchronize(ev1): host joins the first event's clock.
        t.host_joins(ev1);
        // A host-issued op on another stream with no explicit deps: reading
        // the pre-ev1 buffer is safe, reading the post-ev1 buffer races.
        t.observe_op(
            host_op,
            2,
            &[],
            "k",
            "kernel",
            &[(buf_a, Dir::Read), (buf_b, Dir::Read)],
            SimTime::ZERO,
        );
        assert_eq!(t.counters().total(), 1, "exactly the post-ev1 write races");
        assert_eq!(t.counters().read_write_race, 1);

        // Syncing the SECOND event instead covers everything.
        let ids = mint(5);
        let (w0, ev1, w1, ev2, host_op) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let mut t = HazardTracker::new();
        t.observe_op(
            w0,
            1,
            &[],
            "wA",
            "kernel",
            &[(buf_a, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(ev1, 1, &[w0], "event", "event", &[], SimTime::ZERO);
        t.observe_op(
            w1,
            1,
            &[ev1],
            "wB",
            "kernel",
            &[(buf_b, Dir::Write)],
            SimTime::ZERO,
        );
        t.observe_op(ev2, 1, &[w1], "event", "event", &[], SimTime::ZERO);
        t.host_joins(ev2);
        t.observe_op(
            host_op,
            2,
            &[],
            "k",
            "kernel",
            &[(buf_a, Dir::Read), (buf_b, Dir::Read)],
            SimTime::ZERO,
        );
        assert!(
            !t.counters().any(),
            "the later event covers the whole stream"
        );
    }

    #[test]
    fn deep_mode_records_are_deterministic_and_traceable() {
        let run = || {
            let ids = mint(2);
            let mut t = HazardTracker::new();
            t.set_deep(true);
            let buf = BufKey::Device(0);
            t.observe_op(
                ids[0],
                1,
                &[],
                "H2D",
                "h2d",
                &[(buf, Dir::Write)],
                SimTime::ZERO,
            );
            t.observe_op(
                ids[1],
                2,
                &[],
                "k",
                "kernel",
                &[(buf, Dir::Read)],
                SimTime::from_us(5),
            );
            t.trace()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.spans[0].category, "use-before-transfer");
        assert_eq!(a.spans[0].label, b.spans[0].label);
        assert_eq!(a.spans[0].start, b.spans[0].start);
    }
}
