//! The simulated platform: one host, one device, a CUDA-style API.
//!
//! [`GpuSystem`] owns the discrete-event scheduler and exposes the operations
//! the paper's library is written against:
//!
//! | CUDA                       | here                                    |
//! |----------------------------|-----------------------------------------|
//! | `cudaMalloc`               | [`GpuSystem::malloc_device`]             |
//! | `cudaMallocHost`           | [`GpuSystem::malloc_host`] (`Pinned`)    |
//! | `malloc`                   | [`GpuSystem::malloc_host`] (`Pageable`)  |
//! | `cudaMallocManaged`        | [`GpuSystem::malloc_managed`]            |
//! | `cudaMemGetInfo`           | [`GpuSystem::mem_get_info`]              |
//! | `cudaStreamCreate`         | [`GpuSystem::create_stream`]             |
//! | `cudaMemcpyAsync` H2D/D2H  | [`GpuSystem::memcpy_h2d_async`] / [`GpuSystem::memcpy_d2h_async`] |
//! | kernel `<<<...,stream>>>`  | [`GpuSystem::launch_kernel`]             |
//! | `cudaStreamSynchronize`    | [`GpuSystem::stream_synchronize`]        |
//! | `cudaDeviceSynchronize`    | [`GpuSystem::device_synchronize`]        |
//! | `cudaEventRecord` / `cudaStreamWaitEvent` | [`GpuSystem::record_event`] / [`GpuSystem::stream_wait_event`] |
//!
//! Semantics preserved from the real runtime, because the paper's results
//! hinge on them:
//!
//! * operations in one stream execute in FIFO order; operations in different
//!   streams may overlap when engines are free;
//! * there is one DMA engine per direction, so H2D, D2H and compute can all
//!   proceed concurrently — but two H2D copies serialize;
//! * `memcpy_*_async` on **pageable** memory stages through a host bounce
//!   buffer and blocks the host (CUDA degrades exactly this way), so genuine
//!   overlap requires pinned memory;
//! * managed (unified) memory migrates on demand at kernel launch and at
//!   host access, at a lower bandwidth plus a fault overhead.
//!
//! The host has its own clock: asynchronous submissions cost
//! `host_enqueue_overhead`, blocking calls advance the clock to the awaited
//! completion, and host-side work (ghost-cell index computation, host
//! staging) occupies the `host` trace lane.

use crate::config::{HostMemKind, MachineConfig};
use crate::fault::{FaultPlan, FaultState, FaultStats, Lane};
use crate::hazard::{Dir, HazardCounters, HazardRecord, HazardTracker};
use crate::kernel::KernelLaunch;
use crate::memory::{DeviceAllocator, IntegrityBook, IntegrityStats, OutOfDeviceMemory};
use desim::{intern_fmt, EngineId, Op, OpId, Scheduler, SimTime, Sym, Trace, TraceLevel};
use memslab::Slab;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Interned symbol for a literal, resolved once per call site (an atomic
/// load afterwards) — keeps constant labels/categories off the interner's
/// hash path in per-op code.
macro_rules! csym {
    ($s:literal) => {{
        static S: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
        *S.get_or_init(|| desim::intern_static($s))
    }};
}

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceBuffer(pub(crate) usize);

impl DeviceBuffer {
    /// Stable index for [`BufKey::Device`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a host allocation (pageable or pinned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostBuffer(pub(crate) usize);

impl HostBuffer {
    /// Stable index for [`BufKey::Host`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a managed (unified-memory) allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ManagedBuffer(pub(crate) usize);

impl ManagedBuffer {
    /// Stable index for [`BufKey::Managed`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<DeviceBuffer> for BufKey {
    fn from(b: DeviceBuffer) -> BufKey {
        BufKey::Device(b.0)
    }
}

impl From<HostBuffer> for BufKey {
    fn from(b: HostBuffer) -> BufKey {
        BufKey::Host(b.0)
    }
}

impl From<ManagedBuffer> for BufKey {
    fn from(b: ManagedBuffer) -> BufKey {
        BufKey::Managed(b.0)
    }
}

/// Handle to a stream (an in-order activity queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// A recorded event; created by [`GpuSystem::record_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event(OpId);

/// Identity of a buffer for access tracking (hazard checking, managed
/// migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BufKey {
    Device(usize),
    Host(usize),
    Managed(usize),
}

impl BufKey {
    /// Stable scalar encoding of this buffer's identity, used as the
    /// abstract resource in desim op footprints ([`desim::Op::touches`]) so
    /// schedule explorers can tell which enqueued ops commute. The variant
    /// tag lives above bit 32; buffer indices never collide across kinds.
    pub fn resource_id(self) -> u64 {
        match self {
            BufKey::Device(i) => (1u64 << 32) | i as u64,
            BufKey::Host(i) => (2u64 << 32) | i as u64,
            BufKey::Managed(i) => (3u64 << 32) | i as u64,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Write,
}

/// A potential data race found by [`GpuSystem::check_hazards`].
#[derive(Debug, Clone)]
pub struct Hazard {
    pub buffer: BufKey,
    pub first_label: String,
    pub second_label: String,
    pub overlap_start: SimTime,
    pub overlap_end: SimTime,
}

struct DevEntry {
    addr: u64,
    slab: Slab,
    alive: bool,
    device: usize,
}

struct HostEntry {
    kind: HostMemKind,
    slab: Slab,
}

struct ManagedEntry {
    addr: u64,
    slab: Slab,
    on_device: bool,
    device: usize,
}

struct StreamState {
    last: Option<OpId>,
    /// Cross-stream dependencies injected by `stream_wait_event`.
    pending: Vec<OpId>,
    device: usize,
}

/// Per-device engines and memory (each simulated GPU has its own DMA
/// engines, compute engine and allocator).
struct DeviceState {
    eng_h2d: EngineId,
    eng_d2h: EngineId,
    eng_compute: EngineId,
    alloc: DeviceAllocator,
}

/// The simulated host + device platform. See the module docs.
pub struct GpuSystem {
    cfg: MachineConfig,
    sched: Scheduler,
    devices: Vec<DeviceState>,
    eng_host: EngineId,
    /// The NIC receive engine, created lazily by the first
    /// [`GpuSystem::net_deliver`] so single-node runs keep their engine
    /// table (and trace layout) bit-identical to builds without the
    /// cluster layer.
    eng_nic: Option<EngineId>,
    host_clock: SimTime,
    /// The operation the host most recently blocked on (critical-path
    /// attribution of host stalls).
    last_block: Option<OpId>,
    dev: Vec<DevEntry>,
    host: Vec<HostEntry>,
    managed: Vec<ManagedEntry>,
    streams: Vec<StreamState>,
    backed: bool,
    hazard_checking: bool,
    accesses: Vec<(OpId, BufKey, Access, Sym)>,
    /// Reused dependency buffer for enqueue paths (capacity persists across
    /// calls; taken/restored around each enqueue).
    deps_scratch: Vec<OpId>,
    bytes_h2d: u64,
    bytes_d2h: u64,
    bytes_p2p: u64,
    bytes_net: u64,
    kernels_launched: u64,
    fault: FaultState,
    /// Transfer-integrity bookkeeping, shared with the data effects that
    /// perform copies (the scheduler is single-threaded, so a `RefCell`
    /// behind an `Rc` is sound: effects run one at a time).
    integrity: Rc<RefCell<IntegrityBook>>,
    /// Whether enqueues must install data-effect closures. False only when
    /// the platform is unbacked AND the fault plan schedules no corruption:
    /// then every slab is virtual, no poison can ever arise, and the only
    /// observable act of a copy effect is its verified-counter bump — which
    /// [`IntegrityBook::note_passive_copy`] performs synchronously instead.
    /// Recomputed by [`GpuSystem::set_fault_plan`].
    data_effects: bool,
    /// Interned labels for healthy transfers, keyed by
    /// `(kind << 56) | bytes`. Distinct transfer sizes per run are few, so a
    /// linear scan beats re-formatting and re-hashing the label every op.
    xfer_labels: Vec<(u64, Sym)>,
    /// Always-on vector-clock happens-before tracker.
    hazards: HazardTracker,
    /// Tenant tag applied to submissions until the next
    /// [`GpuSystem::set_tenant`] (`None` = untenanted / runtime-internal).
    current_tenant: Option<u32>,
    /// First tenant to touch each buffer owns it; used by the isolation
    /// accounting below. Untenanted work neither claims nor conflicts.
    tenant_owner: HashMap<BufKey, u32>,
    /// Submissions where a tenant touched a buffer owned by a *different*
    /// tenant. Every such touch enqueues stream/engine edges between the
    /// two tenants' operations — a happens-before path through shared
    /// state — so a multi-tenant runtime that promises isolation asserts
    /// this stays zero.
    cross_tenant_touches: u64,
}

/// Transfer-label kinds for [`GpuSystem::xfer_labels`].
mod xk {
    pub const H2D: u64 = 1;
    pub const D2H: u64 = 2;
    pub const D2D: u64 = 3;
    pub const P2P: u64 = 4;
    pub const SALVAGE: u64 = 5;
    pub const UVM: u64 = 6;
    pub const NET: u64 = 7;
}

impl GpuSystem {
    /// A platform with real (backed) data; kernels and copies move bytes.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::with_backing(cfg, true)
    }

    /// `backed = false` builds every buffer as a virtual slab: the schedule
    /// (and therefore all timing) is identical, but no data is allocated or
    /// moved — this is how the harness runs the paper's 512³ workloads.
    pub fn with_backing(cfg: MachineConfig, backed: bool) -> Self {
        Self::multi(cfg, 1, backed)
    }

    /// A platform with `num_devices` identical GPUs, each with its own DMA
    /// engines, compute engine and memory, driven by one host. Device 0's
    /// engines keep the single-device lane layout (h2d, d2h, compute, host);
    /// additional devices' engines follow.
    pub fn multi(cfg: MachineConfig, num_devices: usize, backed: bool) -> Self {
        assert!(num_devices >= 1, "need at least one device");
        let mut sched = Scheduler::new();
        let mut devices = Vec::with_capacity(num_devices);
        let mut eng_host = EngineId(0);
        for d in 0..num_devices {
            let prefix = if num_devices == 1 {
                String::new()
            } else {
                format!("d{d}.")
            };
            let eng_h2d = sched.add_engine(
                format!("{prefix}h2d"),
                cfg.copy_engines_per_direction.max(1),
            );
            let eng_d2h = sched.add_engine(
                format!("{prefix}d2h"),
                cfg.copy_engines_per_direction.max(1),
            );
            let eng_compute =
                sched.add_engine(format!("{prefix}compute"), cfg.concurrent_kernels.max(1));
            devices.push(DeviceState {
                eng_h2d,
                eng_d2h,
                eng_compute,
                alloc: DeviceAllocator::new(cfg.device_mem_bytes),
            });
            if d == 0 {
                eng_host = sched.add_engine("host", 1);
            }
        }
        let fault = FaultState::new(cfg.faults.clone());
        let data_effects = backed || cfg.faults.corruption.enabled();
        GpuSystem {
            cfg,
            sched,
            devices,
            eng_host,
            eng_nic: None,
            host_clock: SimTime::ZERO,
            last_block: None,
            dev: Vec::new(),
            host: Vec::new(),
            managed: Vec::new(),
            streams: Vec::new(),
            backed,
            hazard_checking: false,
            accesses: Vec::new(),
            deps_scratch: Vec::new(),
            bytes_h2d: 0,
            bytes_d2h: 0,
            bytes_p2p: 0,
            bytes_net: 0,
            kernels_launched: 0,
            fault,
            integrity: Rc::new(RefCell::new(IntegrityBook::new())),
            data_effects,
            xfer_labels: Vec::new(),
            hazards: HazardTracker::new(),
            current_tenant: None,
            tenant_owner: HashMap::new(),
            cross_tenant_touches: 0,
        }
    }

    /// Cached interned label for a healthy transfer of `bytes` (`kind` is a
    /// [`xk`] constant); `make` renders it on first sight.
    fn xfer_label(&mut self, kind: u64, bytes: u64, make: impl FnOnce() -> Sym) -> Sym {
        let key = (kind << 56) | bytes;
        if let Some(&(_, s)) = self.xfer_labels.iter().find(|&&(k, _)| k == key) {
            return s;
        }
        let s = make();
        self.xfer_labels.push((key, s));
        s
    }

    /// Number of simulated devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Whether buffers carry real data.
    pub fn backed(&self) -> bool {
        self.backed
    }

    /// Enable span recording (for Gantt charts / Chrome traces).
    /// Compatibility wrapper over [`GpuSystem::set_trace_level`]:
    /// `true` = [`TraceLevel::Full`], `false` = [`TraceLevel::Off`].
    pub fn set_tracing(&mut self, on: bool) {
        self.sched.set_tracing(on);
    }

    /// Set how much execution history the scheduler records
    /// ([`TraceLevel::Off`] / `Counters` / `Full`). Levels change what is
    /// *recorded*, never the schedule: timing, digests, statistics and
    /// hazard counters are bit-identical across levels.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.sched.set_trace_level(level);
    }

    /// Current trace level.
    pub fn trace_level(&self) -> TraceLevel {
        self.sched.trace_level()
    }

    /// Scheduling decision points so far: admissions at which more than one
    /// enqueued op was simultaneously runnable. The denominator of the
    /// ns/decision-point simulator-throughput metric.
    pub fn decision_points(&self) -> u64 {
        self.sched.decision_points()
    }

    /// Operations executed by the scheduler so far.
    pub fn ops_executed(&self) -> u64 {
        self.sched.executed() as u64
    }

    /// Install (or clear) a [`desim::ScheduleOracle`] on the underlying
    /// scheduler: at every point where more than one enqueued op is
    /// simultaneously runnable (different streams, satisfied event deps),
    /// the oracle — not FIFO arrival order — picks which op the hardware
    /// admits next. With no oracle the simulation stays fully deterministic.
    pub fn set_schedule_oracle(&mut self, oracle: Option<Rc<RefCell<dyn desim::ScheduleOracle>>>) {
        self.sched.set_oracle(oracle);
    }

    /// Enable access recording for [`GpuSystem::check_hazards`].
    pub fn set_hazard_checking(&mut self, on: bool) {
        self.hazard_checking = on;
    }

    // ------------------------------------------------------------------
    // Transfer integrity and happens-before hazard tracking
    // ------------------------------------------------------------------

    /// Digest verification on/off (on by default).
    ///
    /// Turning it off skips the FNV-1a computation inside every transfer and
    /// kernel effect — the overhead the `figures -- integrity` benchmark
    /// measures — but keeps the data outcome of injected corruption
    /// identical (retransmits and poison bookkeeping are driven by the
    /// seeded verdict), so a run never silently diverges based on this knob.
    pub fn set_integrity_checking(&mut self, on: bool) {
        self.integrity.borrow_mut().set_enabled(on);
    }

    /// Whether digest verification is active.
    pub fn integrity_checking(&self) -> bool {
        self.integrity.borrow().enabled()
    }

    /// Counters of the transfer-integrity layer. Detection happens inside
    /// data effects, so the values are current after any host
    /// synchronization point ([`GpuSystem::finish`],
    /// [`GpuSystem::stream_synchronize`], …).
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity.borrow().stats()
    }

    /// Whether a device buffer holds data known corrupt beyond repair.
    pub fn device_poisoned(&self, d: DeviceBuffer) -> bool {
        // Without backing data or injected corruption, poison provably
        // cannot arise — skip the integrity-book borrow on the hot path.
        if !self.data_effects {
            return false;
        }
        self.integrity.borrow().device_poisoned(d.0)
    }

    /// Whether a host buffer received data from a poisoned source. A
    /// runtime must never expose such a buffer's contents as results.
    pub fn host_poisoned(&self, h: HostBuffer) -> bool {
        if !self.data_effects {
            return false;
        }
        self.integrity.borrow().host_poisoned(h.0)
    }

    /// The caller restored authoritative contents into `h` (e.g. from a
    /// checkpoint): clear its poison mark.
    pub fn clear_host_poison(&mut self, h: HostBuffer) {
        self.integrity.borrow_mut().clear_host_poison(h.0);
    }

    /// Deep hazard tracking: in addition to the always-on counters, record
    /// every hazard ([`GpuSystem::hazard_records`]) and make the replayable
    /// trace ([`GpuSystem::hazard_trace`]) available.
    pub fn set_deep_hazard_tracking(&mut self, on: bool) {
        self.hazards.set_deep(on);
    }

    /// Per-kind counters from the always-on happens-before tracker. A
    /// correctly ordered program reports zero everywhere, whatever the
    /// schedule; any non-zero count is an ordering bug in the submitting
    /// runtime, even if this particular schedule happened to get lucky.
    pub fn hazard_counters(&self) -> HazardCounters {
        self.hazards.counters()
    }

    /// Detailed hazard records (deep mode only; empty otherwise).
    pub fn hazard_records(&self) -> &[HazardRecord] {
        self.hazards.records()
    }

    /// The deep-mode hazard trace: one span per hazard in detection order,
    /// category = hazard kind. Deterministic for a fixed program and seed.
    pub fn hazard_trace(&self) -> Trace {
        self.hazards.trace()
    }

    /// Runtime hook: the cache list evicted `d`'s slot. A subsequent read
    /// of the buffer without a reload is flagged as a stale-cache-list read
    /// even though no scheduler-level race exists.
    pub fn note_evicted(&mut self, d: DeviceBuffer, label: impl Into<Sym>) {
        self.hazards.note_evicted(BufKey::Device(d.0), label);
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocate `len` doubles of host memory of the given kind.
    pub fn malloc_host(&mut self, len: usize, kind: HostMemKind) -> HostBuffer {
        self.host.push(HostEntry {
            kind,
            slab: Slab::new(len, self.backed),
        });
        HostBuffer(self.host.len() - 1)
    }

    /// Register an externally allocated slab as host memory of the given
    /// kind — how TiDA-acc's `tileArray` hands its pinned region buffers
    /// (allocated with `cudaMallocHost` in the paper, §IV-A) to the runtime.
    pub fn adopt_host_slab(&mut self, slab: Slab, kind: HostMemKind) -> HostBuffer {
        self.host.push(HostEntry { kind, slab });
        HostBuffer(self.host.len() - 1)
    }

    /// Allocate `len` doubles of device memory on device 0 (`cudaMalloc`).
    pub fn malloc_device(&mut self, len: usize) -> Result<DeviceBuffer, OutOfDeviceMemory> {
        self.malloc_device_on(0, len)
    }

    /// Allocate `len` doubles of device memory on a specific device
    /// (`cudaSetDevice` + `cudaMalloc`).
    pub fn malloc_device_on(
        &mut self,
        device: usize,
        len: usize,
    ) -> Result<DeviceBuffer, OutOfDeviceMemory> {
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        if self.fault.alloc_refused(device) {
            // An injected `cudaMalloc` failure: report the allocator's real
            // state so callers that size pools from the error stay honest.
            let a = &self.devices[device].alloc;
            return Err(OutOfDeviceMemory {
                requested: bytes,
                largest_free_block: a.largest_free_block(),
                free_total: a.free_bytes(),
            });
        }
        let addr = self.devices[device].alloc.alloc(bytes)?;
        self.dev.push(DevEntry {
            addr,
            slab: Slab::new(len, self.backed),
            alive: true,
            device,
        });
        Ok(DeviceBuffer(self.dev.len() - 1))
    }

    /// The device a buffer lives on.
    pub fn device_of(&self, buf: DeviceBuffer) -> usize {
        self.dev[buf.0].device
    }

    /// Release a device allocation (`cudaFree`).
    pub fn free_device(&mut self, buf: DeviceBuffer) {
        let entry = &mut self.dev[buf.0];
        assert!(entry.alive, "double free of device buffer {:?}", buf);
        entry.alive = false;
        let (addr, bytes, device) = (entry.addr, entry.slab.bytes(), entry.device);
        self.devices[device].alloc.free(addr, bytes);
    }

    /// Allocate `len` doubles of managed memory (`cudaMallocManaged`). On
    /// this (pre-Pascal) device model, managed allocations reserve device
    /// memory eagerly, as the K40 generation did.
    pub fn malloc_managed(&mut self, len: usize) -> Result<ManagedBuffer, OutOfDeviceMemory> {
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        let addr = self.devices[0].alloc.alloc(bytes)?;
        self.managed.push(ManagedEntry {
            addr,
            slab: Slab::new(len, self.backed),
            on_device: false,
            device: 0,
        });
        Ok(ManagedBuffer(self.managed.len() - 1))
    }

    /// Release a managed allocation's device reservation.
    pub fn free_managed(&mut self, buf: ManagedBuffer) {
        let entry = &self.managed[buf.0];
        let (addr, bytes, device) = (entry.addr, entry.slab.bytes(), entry.device);
        self.devices[device].alloc.free(addr, bytes);
    }

    /// `(free, total)` device-0 memory in bytes (`cudaMemGetInfo`).
    pub fn mem_get_info(&self) -> (u64, u64) {
        self.mem_get_info_on(0)
    }

    /// `(free, total)` memory of a specific device.
    pub fn mem_get_info_on(&self, device: usize) -> (u64, u64) {
        let a = &self.devices[device].alloc;
        (a.free_bytes(), a.total())
    }

    /// The backing slab of a host buffer (a cheap shared handle).
    pub fn host_slab(&self, h: HostBuffer) -> Slab {
        self.host[h.0].slab.clone()
    }

    /// The backing slab of a device buffer.
    pub fn device_slab(&self, d: DeviceBuffer) -> Slab {
        assert!(self.dev[d.0].alive, "use after free of device buffer {d:?}");
        self.dev[d.0].slab.clone()
    }

    /// The backing slab of a managed buffer.
    pub fn managed_slab(&self, m: ManagedBuffer) -> Slab {
        self.managed[m.0].slab.clone()
    }

    /// Host memory kind of a host buffer.
    pub fn host_kind(&self, h: HostBuffer) -> HostMemKind {
        self.host[h.0].kind
    }

    // ------------------------------------------------------------------
    // Streams and events
    // ------------------------------------------------------------------

    /// Create a stream on device 0 (an in-order activity queue).
    pub fn create_stream(&mut self) -> StreamId {
        self.create_stream_on(0)
    }

    /// Create a stream on a specific device.
    pub fn create_stream_on(&mut self, device: usize) -> StreamId {
        assert!(device < self.devices.len(), "unknown device {device}");
        self.streams.push(StreamState {
            last: None,
            pending: Vec::new(),
            device,
        });
        StreamId(self.streams.len() - 1)
    }

    /// The device a stream issues to.
    pub fn device_of_stream(&self, stream: StreamId) -> usize {
        self.streams[stream.0].device
    }

    /// Number of created streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Record an event capturing all work submitted to `stream` so far.
    pub fn record_event(&mut self, stream: StreamId) -> Event {
        let ev = csym!("event");
        let mut op = Op::marker().label(ev).category(ev);
        let last = self.streams[stream.0].last;
        if let Some(last) = last {
            op = op.after(last);
        }
        let id = self.sched.submit(op.not_before(self.host_clock));
        // The marker is stream-ordered like any other op: it must become the
        // stream's tail, both for CUDA semantics and because the hazard
        // tracker stamps it — if the next op on this stream did not depend
        // on it, the two would share a clock stamp and a waiter joining the
        // event's clock would falsely appear ordered after that next op.
        self.push_stream_op(stream, id);
        // Events carry ordering across streams: the tracker must know their
        // clocks or `stream_wait_event` edges would be lost.
        let deps_buf = last.map(|l| [l]);
        let deps: &[OpId] = deps_buf.as_ref().map(|a| &a[..]).unwrap_or(&[]);
        self.hazards
            .observe_op(id, stream.0 + 1, deps, ev, ev, &[], self.host_clock);
        Event(id)
    }

    /// Make future work on `stream` wait for `event`.
    pub fn stream_wait_event(&mut self, stream: StreamId, event: Event) {
        self.streams[stream.0].pending.push(event.0);
    }

    /// Make future work on `stream` wait for a specific operation — the
    /// runtime-internal form of `stream_wait_event` used when the awaited
    /// operation's id is already at hand (e.g. an eviction write-back).
    pub fn stream_wait_op(&mut self, stream: StreamId, op: OpId) {
        self.streams[stream.0].pending.push(op);
    }

    /// Block the host until all work submitted to `stream` completes.
    pub fn stream_synchronize(&mut self, stream: StreamId) {
        if let Some(last) = self.streams[stream.0].last {
            let t = self.sched.run_until(last);
            if t >= self.host_clock {
                self.last_block = Some(last);
            }
            self.host_clock = self.host_clock.max(t);
            self.hazards.host_joins(last);
        }
    }

    /// Block the host until one specific operation completes (the runtime's
    /// internal fine-grained wait; CUDA exposes the equivalent through
    /// `cudaEventSynchronize`).
    pub fn sync_op(&mut self, op: desim::OpId) {
        let t = self.sched.run_until(op);
        if t >= self.host_clock {
            self.last_block = Some(op);
        }
        self.host_clock = self.host_clock.max(t);
        self.hazards.host_joins(op);
    }

    /// Block the host until all submitted device work completes.
    pub fn device_synchronize(&mut self) {
        self.sched.run_all();
        if self.sched.max_end() >= self.host_clock {
            self.last_block = self.sched.last_finished();
        }
        self.host_clock = self.host_clock.max(self.sched.max_end());
        let lasts: Vec<OpId> = self.streams.iter().filter_map(|s| s.last).collect();
        for op in lasts {
            self.hazards.host_joins(op);
        }
    }

    /// Non-blocking completion probe for `stream`
    /// (`cudaStreamQuery() == cudaSuccess`): true when every operation
    /// submitted to the stream has finished by the current host clock.
    ///
    /// The probe forces lazy execution of the stream's tail (the scheduler
    /// otherwise runs ops on demand), which is schedule-neutral: op start
    /// times are fixed at submission, so running them early changes no
    /// timestamps. The host clock does not advance and no happens-before
    /// edge is created — a query is not a synchronization point.
    pub fn stream_query(&mut self, stream: StreamId) -> bool {
        match self.streams[stream.0].last {
            None => true,
            Some(op) => self.sched.run_until(op) <= self.host_clock,
        }
    }

    /// The simulated completion time of one operation, without advancing
    /// the host clock or creating a happens-before edge — the same
    /// schedule-neutral lazy-execution probe as [`GpuSystem::stream_query`].
    /// The cluster layer uses it to read a D2H's finish time as the send
    /// timestamp of an outgoing network message.
    pub fn op_completion(&mut self, op: OpId) -> SimTime {
        self.sched.run_until(op)
    }

    /// The NIC receive engine, created on first use (capacity 1: one
    /// message lands at a time, so concurrent arrivals queue — and, under
    /// a schedule oracle, become decision points).
    fn nic_engine(&mut self) -> EngineId {
        match self.eng_nic {
            Some(e) => e,
            None => {
                let e = self.sched.add_engine("nic", 1);
                self.eng_nic = Some(e);
                e
            }
        }
    }

    /// Deliver an incoming network message of `bytes` into host buffer
    /// `dst`, stream-ordered on `stream` of *this* node.
    ///
    /// `arrival` is the wire arrival time computed by the cluster's network
    /// model (flight time, contention, drops already folded in); `rx_time`
    /// is how long the NIC occupies landing the payload. The op starts no
    /// earlier than `arrival`, queues behind other arrivals on the
    /// capacity-1 NIC engine, and carries a write footprint on `dst` — so
    /// under a schedule oracle, racing arrivals are decision points and
    /// DPOR sees deliveries to different buffers as independent. `effect`
    /// scatters the payload (already snapshotted on the sending side) and
    /// runs only when the platform is backed.
    pub fn net_deliver(
        &mut self,
        stream: StreamId,
        dst: HostBuffer,
        bytes: u64,
        arrival: SimTime,
        rx_time: SimTime,
        effect: impl FnOnce() + 'static,
    ) -> OpId {
        self.note_tenant_touch(BufKey::Host(dst.0));
        let eng = self.nic_engine();
        let deps = self.stream_deps(stream);
        let label = self.xfer_label(xk::NET, bytes, || intern_fmt(format_args!("NET[{bytes}B]")));
        let category = csym!("net");
        let mut builder = Op::on(eng, rx_time)
            .not_before(arrival.max(self.host_clock))
            .host_cause(self.last_block)
            .after_all(deps.iter().copied())
            .label(label)
            .category(category)
            .touches(BufKey::Host(dst.0).resource_id(), true);
        if self.data_effects {
            builder = builder.effect(effect);
        }
        let op = self.sched.submit(builder);
        self.push_stream_op(stream, op);
        self.bytes_net += bytes;
        self.record_access(op, BufKey::Host(dst.0), Access::Write, category);
        let hb_buf = [(BufKey::Host(dst.0), Dir::Write)];
        self.hazards
            .observe_op(op, stream.0 + 1, &deps, label, category, &hb_buf, self.host_clock);
        self.put_deps(deps);
        op
    }

    /// Drop a zero-width annotation span on the host lane — visible in
    /// traces (category `category`) without perturbing the schedule: no
    /// host-clock advance, no dependencies, no hazard-tracker stamp. Used
    /// by runtimes to make silent degradations (e.g. a capped prefetch)
    /// observable in the trace.
    pub fn note_marker(&mut self, category: &'static str, label: impl Into<Sym>) {
        if self.fault.crashed() {
            return;
        }
        let op = Op::on(self.eng_host, SimTime::ZERO)
            .not_before(self.host_clock)
            .label(label.into())
            .category(category);
        let _ = self.sched.submit(op);
    }

    /// Gather the dependencies for the next op on `stream` into the reused
    /// scratch buffer (take it back with [`GpuSystem::put_deps`] when the
    /// enqueue path is done, so its capacity survives to the next call).
    fn stream_deps(&mut self, stream: StreamId) -> Vec<OpId> {
        let mut deps = std::mem::take(&mut self.deps_scratch);
        deps.clear();
        let st = &mut self.streams[stream.0];
        deps.extend_from_slice(&st.pending);
        st.pending.clear();
        if let Some(last) = st.last {
            deps.push(last);
        }
        deps
    }

    /// Return the scratch buffer taken by [`GpuSystem::stream_deps`].
    fn put_deps(&mut self, deps: Vec<OpId>) {
        self.deps_scratch = deps;
    }

    fn push_stream_op(&mut self, stream: StreamId, op: OpId) {
        self.streams[stream.0].last = Some(op);
    }

    fn record_access(&mut self, op: OpId, key: BufKey, access: Access, label: Sym) {
        if self.hazard_checking {
            self.accesses.push((op, key, access, label));
        }
    }

    // ------------------------------------------------------------------
    // Tenant tagging
    // ------------------------------------------------------------------

    /// Tag every following submission (transfers, kernels, allocations)
    /// with `tenant` until the next call; `None` marks untenanted
    /// runtime-internal work. The tag scopes fault injection (see
    /// [`FaultPlan::scope_tenant`]) and drives the cross-tenant buffer
    /// accounting behind [`GpuSystem::cross_tenant_touches`].
    pub fn set_tenant(&mut self, tenant: Option<u32>) {
        self.current_tenant = tenant;
        self.fault.current_tenant = tenant;
    }

    /// The tenant tag currently applied to submissions.
    pub fn current_tenant(&self) -> Option<u32> {
        self.current_tenant
    }

    /// Submissions in which a tagged tenant touched a buffer owned by a
    /// *different* tenant (first toucher owns). A multi-tenant runtime
    /// keeping tenants on disjoint buffers must hold this at zero: any
    /// happens-before edge between two tenants' operations would have to
    /// run through a shared buffer, so zero cross-tenant touches witnesses
    /// zero cross-tenant data-flow edges.
    pub fn cross_tenant_touches(&self) -> u64 {
        self.cross_tenant_touches
    }

    fn note_tenant_touch(&mut self, key: BufKey) {
        let Some(t) = self.current_tenant else { return };
        match self.tenant_owner.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(t);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != t {
                    self.cross_tenant_touches += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Transfers
    // ------------------------------------------------------------------

    /// Asynchronous host→device copy of `len` doubles
    /// (`cudaMemcpyAsync(..., cudaMemcpyHostToDevice, stream)`).
    ///
    /// On pinned memory this returns immediately (the host pays only the
    /// enqueue overhead). On pageable memory CUDA stages the data through a
    /// pinned bounce buffer and the call is effectively synchronous; the
    /// model reproduces both the extra staging cost and the blocking.
    pub fn memcpy_h2d_async(
        &mut self,
        dst: DeviceBuffer,
        dst_off: usize,
        src: HostBuffer,
        src_off: usize,
        len: usize,
        stream: StreamId,
    ) -> OpId {
        assert!(self.dev[dst.0].alive, "copy into freed device buffer");
        let device = self.dev[dst.0].device;
        assert_eq!(
            device, self.streams[stream.0].device,
            "stream and destination buffer live on different devices"
        );
        self.note_tenant_touch(BufKey::Host(src.0));
        self.note_tenant_touch(BufKey::Device(dst.0));
        let eng_h2d = self.devices[device].eng_h2d;
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        let kind = self.host[src.0].kind;
        let mut deps = self.stream_deps(stream);

        if kind == HostMemKind::Pageable {
            // Host-side staging bounce, then DMA; the host blocks.
            let stage = self.sched.submit(
                Op::on(self.eng_host, self.cfg.stage_time(bytes))
                    .not_before(self.host_clock)
                    .label("stage-h2d")
                    .category(csym!("host")),
            );
            deps.push(stage);
        } else {
            self.host_clock += self.cfg.host_enqueue_overhead;
        }

        let v = self.fault.transfer_enqueue(
            Lane::H2d,
            device,
            stream.0,
            self.host_clock,
            self.cfg.h2d_time(bytes),
        );
        if let Some(stall) = v.stall {
            let sop = self.sched.submit(
                Op::on(eng_h2d, stall)
                    .not_before(self.host_clock)
                    .after_all(deps.iter().copied())
                    .label("xfer-stall")
                    .category(csym!("stall")),
            );
            deps.push(sop);
        }

        let label = if v.faulted {
            intern_fmt(format_args!("H2D-fault[{bytes}B]"))
        } else if v.livelocked {
            intern_fmt(format_args!("H2D-wedged[{bytes}B]"))
        } else {
            self.xfer_label(xk::H2D, bytes, || intern_fmt(format_args!("H2D[{bytes}B]")))
        };
        let category = if v.faulted {
            csym!("h2d-fault")
        } else if v.livelocked {
            csym!("livelock")
        } else {
            csym!("h2d")
        };
        let mut builder = Op::on(eng_h2d, v.duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .after_all(deps.iter().copied())
            .label(label)
            .category(category)
            .touches(BufKey::Host(src.0).resource_id(), false)
            .touches(BufKey::Device(dst.0).resource_id(), true);
        if !v.faulted && !v.livelocked {
            // A faulted or wedged attempt occupies the engine but moves no
            // data. A healthy one copies under the integrity layer: flips
            // land, digests are verified, retransmits repair.
            if self.data_effects {
                let integrity = Rc::clone(&self.integrity);
                let corrupt = v.corrupt;
                let (dst_idx, src_idx) = (dst.0, src.0);
                let dst_slab = self.dev[dst.0].slab.clone();
                let src_slab = self.host[src.0].slab.clone();
                builder = builder.effect(move || {
                    integrity.borrow_mut().h2d_effect(
                        &dst_slab, dst_idx, dst_off, &src_slab, src_idx, src_off, len, corrupt,
                    )
                });
            } else {
                self.integrity.borrow_mut().note_passive_copy();
            }
        }
        let op = self.sched.submit(builder);
        self.push_stream_op(stream, op);
        let hb_buf = [
            (BufKey::Host(src.0), Dir::Read),
            (BufKey::Device(dst.0), Dir::Write),
        ];
        let mut hb_accesses: &[(BufKey, Dir)] = &[];
        if v.faulted {
            self.fault.mark_faulted(op);
        } else if !v.livelocked {
            self.bytes_h2d += bytes;
            self.record_access(op, BufKey::Host(src.0), Access::Read, csym!("h2d"));
            self.record_access(op, BufKey::Device(dst.0), Access::Write, csym!("h2d"));
            hb_accesses = &hb_buf;
        }
        self.hazards.observe_op(
            op,
            stream.0 + 1,
            &deps,
            label,
            category,
            hb_accesses,
            self.host_clock,
        );
        self.put_deps(deps);

        if kind == HostMemKind::Pageable {
            let t = self.sched.run_until(op);
            self.host_clock = self.host_clock.max(t);
            self.hazards.host_joins(op);
        }
        op
    }

    /// Asynchronous device→host copy of `len` doubles.
    pub fn memcpy_d2h_async(
        &mut self,
        dst: HostBuffer,
        dst_off: usize,
        src: DeviceBuffer,
        src_off: usize,
        len: usize,
        stream: StreamId,
    ) -> OpId {
        assert!(self.dev[src.0].alive, "copy from freed device buffer");
        let device = self.dev[src.0].device;
        assert_eq!(
            device, self.streams[stream.0].device,
            "stream and source buffer live on different devices"
        );
        self.note_tenant_touch(BufKey::Device(src.0));
        self.note_tenant_touch(BufKey::Host(dst.0));
        let eng_d2h = self.devices[device].eng_d2h;
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        let kind = self.host[dst.0].kind;
        let mut deps = self.stream_deps(stream);

        if kind == HostMemKind::Pinned {
            self.host_clock += self.cfg.host_enqueue_overhead;
        }

        let v = self.fault.transfer_enqueue(
            Lane::D2h,
            device,
            stream.0,
            self.host_clock,
            self.cfg.d2h_time(bytes),
        );
        if let Some(stall) = v.stall {
            let sop = self.sched.submit(
                Op::on(eng_d2h, stall)
                    .not_before(self.host_clock)
                    .after_all(deps.iter().copied())
                    .label("xfer-stall")
                    .category(csym!("stall")),
            );
            deps.push(sop);
        }

        let label = if v.faulted {
            intern_fmt(format_args!("D2H-fault[{bytes}B]"))
        } else if v.livelocked {
            intern_fmt(format_args!("D2H-wedged[{bytes}B]"))
        } else {
            self.xfer_label(xk::D2H, bytes, || intern_fmt(format_args!("D2H[{bytes}B]")))
        };
        let category = if v.faulted {
            csym!("d2h-fault")
        } else if v.livelocked {
            csym!("livelock")
        } else {
            csym!("d2h")
        };
        let mut builder = Op::on(eng_d2h, v.duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .after_all(deps.iter().copied())
            .label(label)
            .category(category)
            .touches(BufKey::Device(src.0).resource_id(), false)
            .touches(BufKey::Host(dst.0).resource_id(), true);
        if !v.faulted && !v.livelocked {
            if self.data_effects {
                let integrity = Rc::clone(&self.integrity);
                let corrupt = v.corrupt;
                let (dst_idx, src_idx) = (dst.0, src.0);
                let dst_slab = self.host[dst.0].slab.clone();
                let src_slab = self.dev[src.0].slab.clone();
                builder = builder.effect(move || {
                    integrity.borrow_mut().d2h_effect(
                        &dst_slab, dst_idx, dst_off, &src_slab, src_idx, src_off, len, corrupt,
                    )
                });
            } else {
                self.integrity.borrow_mut().note_passive_copy();
            }
        }
        let op = self.sched.submit(builder);
        self.push_stream_op(stream, op);
        let hb_buf = [
            (BufKey::Device(src.0), Dir::Read),
            (BufKey::Host(dst.0), Dir::Write),
        ];
        let mut hb_accesses: &[(BufKey, Dir)] = &[];
        if v.faulted {
            self.fault.mark_faulted(op);
        } else if !v.livelocked {
            self.bytes_d2h += bytes;
            self.record_access(op, BufKey::Device(src.0), Access::Read, csym!("d2h"));
            self.record_access(op, BufKey::Host(dst.0), Access::Write, csym!("d2h"));
            hb_accesses = &hb_buf;
        }
        self.hazards.observe_op(
            op,
            stream.0 + 1,
            &deps,
            label,
            category,
            hb_accesses,
            self.host_clock,
        );
        self.put_deps(deps);

        if kind == HostMemKind::Pageable {
            // DMA into the bounce buffer, then a host-side unstage copy;
            // the host blocks through both.
            let unstage = self.sched.submit(
                Op::on(self.eng_host, self.cfg.stage_time(bytes))
                    .after(op)
                    .label("stage-d2h")
                    .category(csym!("host")),
            );
            let t = self.sched.run_until(unstage);
            self.host_clock = self.host_clock.max(t);
            self.hazards.host_joins(op);
        }
        op
    }

    /// Asynchronous same-device copy (`cudaMemcpyAsync` device→device):
    /// runs on the device's memory system (modelled on its compute engine's
    /// bandwidth) without touching the interconnect.
    pub fn memcpy_d2d_async(
        &mut self,
        dst: DeviceBuffer,
        dst_off: usize,
        src: DeviceBuffer,
        src_off: usize,
        len: usize,
        stream: StreamId,
    ) -> OpId {
        assert!(self.dev[dst.0].alive, "copy into freed device buffer");
        assert!(self.dev[src.0].alive, "copy from freed device buffer");
        let device = self.dev[dst.0].device;
        assert_eq!(
            device, self.dev[src.0].device,
            "memcpy_d2d_async is same-device; use memcpy_p2p_async across devices"
        );
        assert_eq!(
            device, self.streams[stream.0].device,
            "stream and buffers live on different devices"
        );
        self.note_tenant_touch(BufKey::Device(src.0));
        self.note_tenant_touch(BufKey::Device(dst.0));
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        let deps = self.stream_deps(stream);
        self.host_clock += self.cfg.host_enqueue_overhead;
        if self.fault.device_lost(device) {
            // Dead device: the copy is refused (zero-duration faulted op).
            let label = intern_fmt(format_args!("D2D-fault[{bytes}B]"));
            let op = self.sched.submit(
                Op::on(self.devices[device].eng_compute, SimTime::ZERO)
                    .not_before(self.host_clock)
                    .host_cause(self.last_block)
                    .after_all(deps.iter().copied())
                    .label(label)
                    .category(csym!("d2d-fault")),
            );
            self.push_stream_op(stream, op);
            self.fault.mark_faulted(op);
            self.hazards.observe_op(
                op,
                stream.0 + 1,
                &deps,
                label,
                csym!("d2d-fault"),
                &[],
                self.host_clock,
            );
            self.put_deps(deps);
            return op;
        }
        // Read + write of the payload at device memory bandwidth.
        let duration = self.cfg.copy_latency
            + SimTime::from_secs_f64(2.0 * bytes as f64 / self.cfg.device_mem_bw);
        let label = self.xfer_label(xk::D2D, bytes, || intern_fmt(format_args!("D2D[{bytes}B]")));
        let mut builder = Op::on(self.devices[device].eng_compute, duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .after_all(deps.iter().copied())
            .label(label)
            .category(csym!("d2d"))
            .touches(BufKey::Device(src.0).resource_id(), false)
            .touches(BufKey::Device(dst.0).resource_id(), true);
        if self.data_effects {
            let integrity = Rc::clone(&self.integrity);
            let (dst_idx, src_idx) = (dst.0, src.0);
            let dst_slab = self.dev[dst.0].slab.clone();
            let src_slab = self.dev[src.0].slab.clone();
            builder = builder.effect(move || {
                integrity.borrow_mut().dev_copy_effect(
                    &dst_slab, dst_idx, dst_off, &src_slab, src_idx, src_off, len,
                )
            });
        } else {
            self.integrity.borrow_mut().note_passive_copy();
        }
        let op = self.sched.submit(builder);
        self.push_stream_op(stream, op);
        self.record_access(op, BufKey::Device(src.0), Access::Read, csym!("d2d"));
        self.record_access(op, BufKey::Device(dst.0), Access::Write, csym!("d2d"));
        self.hazards.observe_op(
            op,
            stream.0 + 1,
            &deps,
            label,
            csym!("d2d"),
            &[
                (BufKey::Device(src.0), Dir::Read),
                (BufKey::Device(dst.0), Dir::Write),
            ],
            self.host_clock,
        );
        self.put_deps(deps);
        op
    }

    /// Asynchronous device→device peer copy (`cudaMemcpyPeerAsync`).
    ///
    /// The transfer is modelled on the destination device's ingress DMA
    /// engine at the peer-link bandwidth (PCIe through the switch on the
    /// K40m platform; NVLink on newer configs). `stream` must live on the
    /// destination device.
    pub fn memcpy_p2p_async(
        &mut self,
        dst: DeviceBuffer,
        dst_off: usize,
        src: DeviceBuffer,
        src_off: usize,
        len: usize,
        stream: StreamId,
    ) -> OpId {
        assert!(self.dev[dst.0].alive, "peer copy into freed device buffer");
        assert!(self.dev[src.0].alive, "peer copy from freed device buffer");
        let dst_device = self.dev[dst.0].device;
        assert_eq!(
            dst_device, self.streams[stream.0].device,
            "peer-copy stream must live on the destination device"
        );
        self.note_tenant_touch(BufKey::Device(src.0));
        self.note_tenant_touch(BufKey::Device(dst.0));
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        let deps = self.stream_deps(stream);
        self.host_clock += self.cfg.host_enqueue_overhead;
        let nominal =
            self.cfg.copy_latency + SimTime::from_secs_f64(bytes as f64 / self.cfg.p2p_bw);
        let src_device = self.dev[src.0].device;
        let src_died = self.fault.device_submission(src_device, self.host_clock);
        let dst_died = self.fault.device_submission(dst_device, self.host_clock);
        if self.fault.device_lost(src_device) || self.fault.device_lost(dst_device) {
            // A dead endpoint refuses the peer copy. If the death fired on
            // exactly this submission the op dies mid-flight, occupying the
            // engine for a fraction of its nominal time; afterwards peer
            // copies are refused outright with zero duration.
            let duration = if src_died || dst_died {
                SimTime::from_ns((nominal.as_ns() as f64 * 0.5).round() as u64)
            } else {
                SimTime::ZERO
            };
            let label = intern_fmt(format_args!("P2P-fault[{bytes}B]"));
            let op = self.sched.submit(
                Op::on(self.devices[dst_device].eng_h2d, duration)
                    .not_before(self.host_clock)
                    .host_cause(self.last_block)
                    .after_all(deps.iter().copied())
                    .label(label)
                    .category(csym!("p2p-fault")),
            );
            self.push_stream_op(stream, op);
            self.fault.mark_faulted(op);
            self.hazards.observe_op(
                op,
                stream.0 + 1,
                &deps,
                label,
                csym!("p2p-fault"),
                &[],
                self.host_clock,
            );
            self.put_deps(deps);
            return op;
        }
        self.bytes_p2p += bytes;
        let duration = nominal;
        let label = self.xfer_label(xk::P2P, bytes, || intern_fmt(format_args!("P2P[{bytes}B]")));
        let mut builder = Op::on(self.devices[dst_device].eng_h2d, duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .after_all(deps.iter().copied())
            .label(label)
            .category(csym!("p2p"))
            .touches(BufKey::Device(src.0).resource_id(), false)
            .touches(BufKey::Device(dst.0).resource_id(), true);
        if self.data_effects {
            let integrity = Rc::clone(&self.integrity);
            let (dst_idx, src_idx) = (dst.0, src.0);
            let dst_slab = self.dev[dst.0].slab.clone();
            let src_slab = self.dev[src.0].slab.clone();
            builder = builder.effect(move || {
                integrity.borrow_mut().dev_copy_effect(
                    &dst_slab, dst_idx, dst_off, &src_slab, src_idx, src_off, len,
                )
            });
        } else {
            self.integrity.borrow_mut().note_passive_copy();
        }
        let op = self.sched.submit(builder);
        self.push_stream_op(stream, op);
        self.record_access(op, BufKey::Device(src.0), Access::Read, csym!("p2p"));
        self.record_access(op, BufKey::Device(dst.0), Access::Write, csym!("p2p"));
        self.hazards.observe_op(
            op,
            stream.0 + 1,
            &deps,
            label,
            csym!("p2p"),
            &[
                (BufKey::Device(src.0), Dir::Read),
                (BufKey::Device(dst.0), Dir::Write),
            ],
            self.host_clock,
        );
        self.put_deps(deps);
        op
    }

    /// Synchronous host→device copy (`cudaMemcpy`).
    pub fn memcpy_h2d(
        &mut self,
        dst: DeviceBuffer,
        dst_off: usize,
        src: HostBuffer,
        src_off: usize,
        len: usize,
        stream: StreamId,
    ) {
        let op = self.memcpy_h2d_async(dst, dst_off, src, src_off, len, stream);
        let t = self.sched.run_until(op);
        self.host_clock = self.host_clock.max(t);
        self.hazards.host_joins(op);
    }

    /// Synchronous device→host copy (`cudaMemcpy`).
    pub fn memcpy_d2h(
        &mut self,
        dst: HostBuffer,
        dst_off: usize,
        src: DeviceBuffer,
        src_off: usize,
        len: usize,
        stream: StreamId,
    ) {
        let op = self.memcpy_d2h_async(dst, dst_off, src, src_off, len, stream);
        let t = self.sched.run_until(op);
        self.host_clock = self.host_clock.max(t);
        self.hazards.host_joins(op);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// The active fault-injection plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault.plan
    }

    /// Replace the fault plan, resetting all fault bookkeeping (attempt
    /// ordinals, counters, faulted-op registry).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.data_effects = self.backed || plan.corruption.enabled();
        self.fault = FaultState::new(plan);
        self.fault.current_tenant = self.current_tenant;
    }

    /// Whether a transfer op returned by `memcpy_*_async` was injected as a
    /// fault: it occupied its engine but moved no data. The caller must
    /// retry the transfer or fall back.
    pub fn op_faulted(&self, op: OpId) -> bool {
        self.fault.is_faulted(op)
    }

    /// Whether the platform has died at a seeded crash point. Once true,
    /// transfers are refused (reported faulted with zero duration) and
    /// kernel launches carry no effect: the instance is torn and must be
    /// discarded; recovery restores a checkpoint into a fresh system.
    pub fn crashed(&self) -> bool {
        self.fault.crashed()
    }

    /// Whether `device` has been permanently retired by a device-death or
    /// ECC-kill fault. Unlike [`GpuSystem::crashed`], the rest of the
    /// platform keeps running: a runtime that migrates the dead device's
    /// regions onto the survivors can resume the run.
    pub fn device_lost(&self, device: usize) -> bool {
        self.fault.device_lost(device)
    }

    /// Indices of devices retired so far (empty on a healthy platform).
    pub fn lost_devices(&self) -> Vec<usize> {
        (0..self.devices.len())
            .filter(|&d| self.fault.device_lost(d))
            .collect()
    }

    /// Counters of injected faults and the engine time they consumed.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.stats
    }

    /// Host-side retry backoff: occupies the host lane like
    /// [`GpuSystem::host_work`] but categorised as `backoff` so traces and
    /// reports attribute recovery time separately from useful work.
    pub fn backoff_work(&mut self, duration: SimTime, label: impl Into<Sym>) {
        let op = Op::on(self.eng_host, duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .label(label.into())
            .category(csym!("backoff"));
        let op = self.sched.submit(op);
        let t = self.sched.run_until(op);
        self.last_block = Some(op);
        self.host_clock = self.host_clock.max(t);
    }

    /// Device→host copy over the maintenance path: exempt from fault
    /// injection but `salvage_slowdown`× slower than a healthy DMA
    /// (modelling chunked synchronous reads through the driver's reliable
    /// path). Runtimes use it to rescue dirty device state after a
    /// persistent transfer failure.
    pub fn memcpy_d2h_salvage(
        &mut self,
        dst: HostBuffer,
        dst_off: usize,
        src: DeviceBuffer,
        src_off: usize,
        len: usize,
        stream: StreamId,
    ) -> OpId {
        assert!(self.dev[src.0].alive, "salvage from freed device buffer");
        let device = self.dev[src.0].device;
        assert_eq!(
            device, self.streams[stream.0].device,
            "stream and source buffer live on different devices"
        );
        self.note_tenant_touch(BufKey::Device(src.0));
        self.note_tenant_touch(BufKey::Host(dst.0));
        let eng_d2h = self.devices[device].eng_d2h;
        let bytes = (len * std::mem::size_of::<f64>()) as u64;
        let slowdown = self.fault.plan.salvage_slowdown.max(1.0);
        let nominal = self.cfg.d2h_time(bytes);
        let duration = SimTime::from_ns((nominal.as_ns() as f64 * slowdown).round() as u64);
        let deps = self.stream_deps(stream);
        self.host_clock += self.cfg.host_enqueue_overhead;
        if self.fault.device_lost(device) {
            // Even the maintenance path needs live hardware: salvage from
            // a dead device is refused (zero-duration faulted op).
            let label = intern_fmt(format_args!("D2H-salvage-fault[{bytes}B]"));
            let op = self.sched.submit(
                Op::on(eng_d2h, SimTime::ZERO)
                    .not_before(self.host_clock)
                    .host_cause(self.last_block)
                    .after_all(deps.iter().copied())
                    .label(label)
                    .category(csym!("salvage-fault")),
            );
            self.push_stream_op(stream, op);
            self.fault.mark_faulted(op);
            self.hazards.observe_op(
                op,
                stream.0 + 1,
                &deps,
                label,
                csym!("salvage-fault"),
                &[],
                self.host_clock,
            );
            self.put_deps(deps);
            return op;
        }
        self.bytes_d2h += bytes;
        let label = self.xfer_label(xk::SALVAGE, bytes, || {
            intern_fmt(format_args!("D2H-salvage[{bytes}B]"))
        });
        let mut builder = Op::on(eng_d2h, duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .after_all(deps.iter().copied())
            .label(label)
            .category(csym!("salvage"))
            .touches(BufKey::Device(src.0).resource_id(), false)
            .touches(BufKey::Host(dst.0).resource_id(), true);
        if self.data_effects {
            let integrity = Rc::clone(&self.integrity);
            let (dst_idx, src_idx) = (dst.0, src.0);
            let dst_slab = self.host[dst.0].slab.clone();
            let src_slab = self.dev[src.0].slab.clone();
            builder = builder.effect(move || {
                // The maintenance path is exempt from injected link
                // corruption but still verifies the device source, so a
                // salvage of a struck slot cannot launder bad bytes.
                integrity.borrow_mut().d2h_effect(
                    &dst_slab, dst_idx, dst_off, &src_slab, src_idx, src_off, len, None,
                )
            });
        } else {
            self.integrity.borrow_mut().note_passive_copy();
        }
        let op = self.sched.submit(builder);
        self.push_stream_op(stream, op);
        self.record_access(op, BufKey::Device(src.0), Access::Read, csym!("salvage"));
        self.record_access(op, BufKey::Host(dst.0), Access::Write, csym!("salvage"));
        self.hazards.observe_op(
            op,
            stream.0 + 1,
            &deps,
            label,
            csym!("salvage"),
            &[
                (BufKey::Device(src.0), Dir::Read),
                (BufKey::Host(dst.0), Dir::Write),
            ],
            self.host_clock,
        );
        self.put_deps(deps);
        self.fault.stats.salvages += 1;
        op
    }

    // ------------------------------------------------------------------
    // Kernels
    // ------------------------------------------------------------------

    /// Launch a kernel into `stream`.
    ///
    /// Managed buffers named in the launch's access lists are migrated to
    /// the device first (in the same stream) if they are not resident,
    /// reproducing unified memory's on-demand behaviour.
    pub fn launch_kernel(&mut self, stream: StreamId, k: KernelLaunch) -> OpId {
        for key in k.reads.iter().chain(k.writes.iter()) {
            self.note_tenant_touch(key);
        }
        let device = self.streams[stream.0].device;
        let crash_now = self.fault.kernel_enqueue(self.host_clock);
        let died_now = self.fault.device_submission(device, self.host_clock);
        let dead = self.fault.crashed() || self.fault.device_lost(device);
        if !dead {
            self.kernels_launched += 1;
        }
        let mut deps = self.stream_deps(stream);
        self.host_clock += self.cfg.host_enqueue_overhead;
        if dead {
            // The platform (or this stream's device) died: a dying launch
            // occupies the compute engine for a fraction of its nominal
            // time and has no effect; launches on already-dead hardware
            // are refused outright.
            let duration = if crash_now || died_now {
                let frac = if crash_now {
                    self.fault
                        .plan
                        .crash
                        .as_ref()
                        .map(|c| c.fraction.clamp(0.0, 1.0))
                        .unwrap_or(0.5)
                } else {
                    0.5
                };
                let nominal = k.cost.duration(&self.cfg, k.efficiency);
                SimTime::from_ns((nominal.as_ns() as f64 * frac).round() as u64)
            } else {
                SimTime::ZERO
            };
            let label = intern_fmt(format_args!("{}-crash", k.label));
            let op = self.sched.submit(
                Op::on(self.devices[device].eng_compute, duration)
                    .not_before(self.host_clock)
                    .host_cause(self.last_block)
                    .after_all(deps.iter().copied())
                    .label(label)
                    .category(csym!("crash")),
            );
            self.push_stream_op(stream, op);
            self.fault.mark_faulted(op);
            self.hazards.observe_op(
                op,
                stream.0 + 1,
                &deps,
                label,
                csym!("crash"),
                &[],
                self.host_clock,
            );
            self.put_deps(deps);
            return op;
        }

        // On-demand managed migration.
        let managed_keys: Vec<usize> = k
            .reads
            .iter()
            .chain(k.writes.iter())
            .filter_map(|key| match key {
                BufKey::Managed(i) => Some(i),
                _ => None,
            })
            .collect();
        let device = self.streams[stream.0].device;
        for i in managed_keys {
            if !self.managed[i].on_device {
                assert_eq!(
                    self.managed[i].device, device,
                    "managed buffer touched from a stream on another device"
                );
                let bytes = self.managed[i].slab.bytes();
                let label = self.xfer_label(xk::UVM, bytes, || {
                    intern_fmt(format_args!("UVM-mig[{bytes}B]"))
                });
                let mig = self.sched.submit(
                    Op::on(
                        self.devices[device].eng_h2d,
                        self.cfg.managed_migration_time(bytes),
                    )
                    .not_before(self.host_clock)
                    .after_all(deps.iter().copied())
                    .label(label)
                    .category(csym!("uvm"))
                    .touches(BufKey::Managed(i).resource_id(), true),
                );
                deps.push(mig);
                self.managed[i].on_device = true;
            }
        }

        let duration = k.cost.duration(&self.cfg, k.efficiency);
        let mut op = Op::on(self.devices[device].eng_compute, duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .after_all(deps.iter().copied())
            .label(k.label)
            .category(csym!("kernel"));
        for key in k.reads.iter() {
            op = op.touches(key.resource_id(), false);
        }
        for key in k.writes.iter() {
            op = op.touches(key.resource_id(), true);
        }
        let op = if self.data_effects {
            // Integrity wrapper around the kernel's data effect: pre-verify
            // the device buffers it reads (repairing resident strikes on
            // clean slots from their host origin), run the kernel, record
            // post-write digests and propagate poison, then land any
            // scheduled dirty-DRAM strike.
            let strike = self.fault.kernel_strike();
            let dev_slabs = |keys: &crate::kernel::KeyList| -> Vec<(usize, Slab)> {
                keys.iter()
                    .filter_map(|key| match key {
                        BufKey::Device(i) => Some((i, self.dev[i].slab.clone())),
                        _ => None,
                    })
                    .collect()
            };
            let read_slabs = dev_slabs(&k.reads);
            let write_slabs = dev_slabs(&k.writes);
            let integrity = Rc::clone(&self.integrity);
            let exec = k.exec;
            // A kernel that runs a data effect without declaring its write
            // set may have mutated any device buffer; all digests/origins
            // are forfeit.
            let undeclared = exec.is_some() && k.writes.is_empty();
            op.effect(move || {
                let inputs_poisoned = integrity.borrow_mut().kernel_pre(&read_slabs, &write_slabs);
                if let Some(exec) = exec {
                    exec();
                }
                integrity.borrow_mut().kernel_post(
                    inputs_poisoned,
                    &write_slabs,
                    undeclared,
                    strike,
                );
            })
        } else if let Some(exec) = k.exec {
            // Timing-only buffers with no corruption in play: digests,
            // origins and poison sets are all provably empty, so the
            // integrity wrapper is pure overhead — run the bare data effect.
            op.effect(exec)
        } else {
            op
        };
        let id = self.sched.submit(op);
        self.push_stream_op(stream, id);
        for key in k.reads.iter() {
            self.record_access(id, key, Access::Read, k.label);
        }
        for key in k.writes.iter() {
            self.record_access(id, key, Access::Write, k.label);
        }
        // Kernel access lists are short (a handful of buffers); one inline
        // buffer covers the common case without an allocation.
        let mut hb_buf = [(BufKey::Device(0), Dir::Read); 8];
        let mut hb_n = 0;
        let mut hb_spill: Vec<(BufKey, Dir)> = Vec::new();
        for access in k
            .reads
            .iter()
            .map(|key| (key, Dir::Read))
            .chain(k.writes.iter().map(|key| (key, Dir::Write)))
        {
            if hb_n < hb_buf.len() {
                hb_buf[hb_n] = access;
                hb_n += 1;
            } else {
                hb_spill.push(access);
            }
        }
        if hb_spill.is_empty() {
            self.hazards.observe_op(
                id,
                stream.0 + 1,
                &deps,
                k.label,
                csym!("kernel"),
                &hb_buf[..hb_n],
                self.host_clock,
            );
        } else {
            let mut all = hb_buf[..hb_n].to_vec();
            all.append(&mut hb_spill);
            self.hazards.observe_op(
                id,
                stream.0 + 1,
                &deps,
                k.label,
                csym!("kernel"),
                &all,
                self.host_clock,
            );
        }
        self.put_deps(deps);
        id
    }

    // ------------------------------------------------------------------
    // Managed-memory coherence
    // ------------------------------------------------------------------

    /// Host access to a managed buffer: synchronizes the device and migrates
    /// the data back if it is device-resident (the page-fault path).
    pub fn managed_host_access(&mut self, m: ManagedBuffer) {
        if self.managed[m.0].on_device {
            self.device_synchronize();
            let bytes = self.managed[m.0].slab.bytes();
            let device = self.managed[m.0].device;
            let mig = self.sched.submit(
                Op::on(
                    self.devices[device].eng_d2h,
                    self.cfg.managed_migration_time(bytes),
                )
                .not_before(self.host_clock)
                .label(format!("UVM-mig-back[{bytes}B]"))
                .category(csym!("uvm")),
            );
            let t = self.sched.run_until(mig);
            self.host_clock = self.host_clock.max(t);
            self.managed[m.0].on_device = false;
        }
    }

    /// Whether a managed buffer is currently device-resident.
    pub fn managed_on_device(&self, m: ManagedBuffer) -> bool {
        self.managed[m.0].on_device
    }

    // ------------------------------------------------------------------
    // Host-side work
    // ------------------------------------------------------------------

    /// Enqueue a host callback into a stream (`cudaLaunchHostFunc`): it
    /// runs on the host engine after all prior work in the stream, without
    /// blocking the submitting thread, and later stream work waits for it.
    /// Used for stream-ordered host-side post-processing of staged regions.
    pub fn launch_host_func(
        &mut self,
        stream: StreamId,
        duration: SimTime,
        label: impl Into<Sym>,
        f: impl FnOnce() + 'static,
    ) -> OpId {
        let deps = self.stream_deps(stream);
        self.host_clock += self.cfg.host_enqueue_overhead;
        let label: Sym = label.into();
        let op = self.sched.submit(
            Op::on(self.eng_host, duration)
                .not_before(self.host_clock)
                .host_cause(self.last_block)
                .after_all(deps.iter().copied())
                .label(label)
                .category(csym!("hostfn"))
                .effect(f),
        );
        self.push_stream_op(stream, op);
        self.hazards.observe_op(
            op,
            stream.0 + 1,
            &deps,
            label,
            csym!("hostfn"),
            &[],
            self.host_clock,
        );
        self.put_deps(deps);
        op
    }

    /// Perform `duration` of host CPU work (occupies the `host` trace lane
    /// and advances the host clock).
    pub fn host_work(&mut self, duration: SimTime, label: impl Into<Sym>) {
        let op = Op::on(self.eng_host, duration)
            .not_before(self.host_clock)
            .host_cause(self.last_block)
            .label(label.into())
            .category(csym!("host"));
        let op = self.sched.submit(op);
        let t = self.sched.run_until(op);
        self.last_block = Some(op);
        self.host_clock = self.host_clock.max(t);
    }

    /// Host-side memcpy of `bytes` (ghost-cell exchange on the host).
    pub fn host_copy_work(&mut self, bytes: u64, label: impl Into<Sym>) {
        self.host_work(self.cfg.host_copy_time(bytes), label);
    }

    /// Current host clock.
    pub fn host_now(&self) -> SimTime {
        self.host_clock
    }

    // ------------------------------------------------------------------
    // Run completion, traces, statistics
    // ------------------------------------------------------------------

    /// Drain all outstanding work and return the total elapsed time
    /// (max of host clock and last device completion).
    pub fn finish(&mut self) -> SimTime {
        self.device_synchronize();
        self.host_clock
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn trace(&self) -> Trace {
        self.sched.trace()
    }

    /// Scheduler critical path (internal; use
    /// [`GpuSystem::critical_path`][crate::GpuSystem::critical_path], which
    /// drains outstanding work first).
    pub(crate) fn scheduler_critical_path(&self) -> Vec<desim::CriticalStep> {
        self.sched.critical_path()
    }

    /// Total bytes moved host→device so far (excluding managed migrations).
    pub fn stats_bytes_h2d(&self) -> u64 {
        self.bytes_h2d
    }

    /// Total bytes moved device→host so far (excluding managed migrations).
    pub fn stats_bytes_d2h(&self) -> u64 {
        self.bytes_d2h
    }

    /// Total bytes moved device→device over the peer link so far.
    pub fn stats_bytes_p2p(&self) -> u64 {
        self.bytes_p2p
    }

    /// Total network-message bytes delivered into this node so far.
    pub fn stats_bytes_net(&self) -> u64 {
        self.bytes_net
    }

    /// Kernels launched so far.
    pub fn stats_kernels(&self) -> u64 {
        self.kernels_launched
    }

    /// Scan recorded accesses for time-overlapping conflicting pairs.
    ///
    /// Two operations conflict when they touch the same buffer, at least one
    /// writes, and their executions overlap in simulated time — on real
    /// hardware that is a data race between streams. Requires
    /// [`GpuSystem::set_hazard_checking`] and completed work (call after
    /// [`GpuSystem::finish`]).
    pub fn check_hazards(&mut self) -> Vec<Hazard> {
        self.sched.run_all();
        let mut by_buf: Vec<(BufKey, SimTime, SimTime, Access, &str, OpId)> = self
            .accesses
            .iter()
            .map(|(op, key, acc, label)| {
                let start = self.sched.start_of(*op).expect("op ran");
                let end = self.sched.completion(*op).expect("op ran");
                (*key, start, end, *acc, label.as_str(), *op)
            })
            .collect();
        by_buf.sort_by_key(|a| (a.0, a.1, a.2));

        let mut hazards = Vec::new();
        let mut i = 0;
        while i < by_buf.len() {
            let mut j = i + 1;
            // Sweep within one buffer's access list.
            while j < by_buf.len() && by_buf[j].0 == by_buf[i].0 {
                j += 1;
            }
            let group = &by_buf[i..j];
            // Active-set sweep over start-sorted intervals.
            let mut active: Vec<usize> = Vec::new();
            for (gi, a) in group.iter().enumerate() {
                active.retain(|&k| group[k].2 > a.1);
                for &k in &active {
                    let b = &group[k];
                    // An op touching one buffer as both read and write (e.g.
                    // a self-periodic ghost gather) is not a race with itself.
                    if a.5 == b.5 {
                        continue;
                    }
                    if a.3 == Access::Write || b.3 == Access::Write {
                        hazards.push(Hazard {
                            buffer: a.0,
                            first_label: b.4.to_string(),
                            second_label: a.4.to_string(),
                            overlap_start: a.1.max(b.1),
                            overlap_end: a.2.min(b.2),
                        });
                    }
                }
                active.push(gi);
            }
            i = j;
        }
        hazards
    }
}
