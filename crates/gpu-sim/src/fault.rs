//! Deterministic fault injection for the simulated platform.
//!
//! A [`FaultPlan`] describes — from a single seed — which transfer attempts
//! fail, which device allocations are refused, when streams stall, and when
//! the interconnect degrades. Every decision is a pure function of the plan
//! and a per-lane attempt ordinal, so a faulty run is exactly as
//! reproducible as a fault-free one: same plan, same program, same schedule.
//!
//! The plan is carried by [`crate::MachineConfig`] (so experiment configs
//! serialize it alongside the cost model) and evaluated by
//! [`crate::GpuSystem`] at enqueue time:
//!
//! * a **transient** transfer fault makes one attempt occupy its DMA engine
//!   for a fraction of the nominal time, move no data, and be reported
//!   through [`crate::GpuSystem::op_faulted`] — the caller retries;
//! * a **persistent** fault (`fail_after`) makes every later attempt on that
//!   lane fail — callers must degrade (the TiDA-acc runtime falls back to
//!   the host path, salvaging dirty regions through the fault-exempt
//!   [`crate::GpuSystem::memcpy_d2h_salvage`]);
//! * an **allocation** fault makes the n-th `malloc_device` return
//!   `OutOfDeviceMemory` (a `cudaMalloc` failure mid-run);
//! * a **stall** occupies a stream's DMA engine before a transfer starts
//!   (driver hiccup, ECC scrub);
//! * a **degrade window** multiplies the duration of transfers enqueued
//!   while the window is open (link retraining, neighbour traffic);
//! * a **crash** kills the whole platform at a seeded point (the n-th
//!   transfer or kernel, or a virtual-time threshold): the triggering
//!   operation dies mid-flight, every later submission is refused, and
//!   [`crate::GpuSystem::crashed`] reports the death — recovery means
//!   discarding the instance and restoring a checkpoint;
//! * a **livelock** wedges one stream: past a seeded point its transfers
//!   are accepted and occupy the engine for an enormous horizon but never
//!   move data — unlike a stall they never resolve, so only a watchdog
//!   comparing virtual time against progress can catch them.
//!
//! `FaultPlan::none()` disables everything; the simulator's fast paths are
//! bit-identical with the layer present but disabled.

use desim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform `f64` in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Transfer lanes a fault decision can apply to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lane {
    H2d,
    D2h,
}

impl Lane {
    fn tag(self) -> u64 {
        match self {
            Lane::H2d => 0x4832_4400,
            Lane::D2h => 0x4432_4800,
        }
    }
}

/// Salt separating corruption draws from transfer-fault draws on the same
/// (seed, lane, ordinal) stream.
const CORRUPT_SALT: u64 = 0x434f_5252;

/// Salt separating per-device ECC-error draws from every other seeded
/// stream.
const ECC_SALT: u64 = 0x4543_4343;

/// Seeded silent-corruption injection (a non-ECC DRAM model).
///
/// Unlike [`TransferFaults`], a corrupted operation *completes normally* —
/// no error surfaces, the engine reports success, and the data is simply
/// wrong. Only end-to-end digest verification can catch it:
///
/// * an **in-flight** flip corrupts one bit of a H2D/D2H payload on the
///   bus; the integrity layer detects the digest mismatch at completion
///   and retransmits from the authoritative side, bounded by
///   [`CorruptionFault::max_retransmits`] (each retransmit re-occupies the
///   DMA engine for the nominal transfer time);
/// * a **resident strike** flips a bit in data already sitting in device
///   DRAM — after the n-th H2D lands (clean data; the host copy is still
///   authoritative, so the next consumer repairs it) or after the n-th
///   kernel writes (dirty data; the host copy is stale, so the poison can
///   only be cured by a checkpoint restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionFault {
    /// Probability in `[0, 1]` that one H2D copy attempt is corrupted
    /// in flight.
    pub h2d_rate: f64,
    /// Probability in `[0, 1]` that one D2H copy attempt is corrupted
    /// in flight.
    pub d2h_rate: f64,
    /// 0-based H2D attempt ordinals whose *landed* device data is struck
    /// after verification (clean resident corruption).
    pub strike_after_h2d: Vec<u64>,
    /// 0-based kernel-launch ordinals whose first written device buffer is
    /// struck after execution (dirty resident corruption).
    pub strike_after_kernel: Vec<u64>,
    /// In-flight repair budget: how many times a corrupted transfer is
    /// retransmitted before the destination is left poisoned.
    pub max_retransmits: u32,
}

impl Default for CorruptionFault {
    fn default() -> Self {
        CorruptionFault {
            h2d_rate: 0.0,
            d2h_rate: 0.0,
            strike_after_h2d: Vec::new(),
            strike_after_kernel: Vec::new(),
            max_retransmits: 2,
        }
    }
}

impl CorruptionFault {
    pub fn enabled(&self) -> bool {
        self.h2d_rate > 0.0
            || self.d2h_rate > 0.0
            || !self.strike_after_h2d.is_empty()
            || !self.strike_after_kernel.is_empty()
    }

    /// Whether the `attempt`-th copy of the transfer with this ordinal is
    /// corrupted in flight (attempt 0 is the original send; 1.. are
    /// retransmits). Pure function of the plan seed.
    fn attempt_corrupt(&self, seed: u64, lane: Lane, ordinal: u64, attempt: u32) -> bool {
        let rate = match lane {
            Lane::H2d => self.h2d_rate,
            Lane::D2h => self.d2h_rate,
        };
        rate > 0.0
            && unit(splitmix64(
                splitmix64(seed ^ lane.tag() ^ CORRUPT_SALT) ^ ordinal ^ ((attempt as u64) << 48),
            )) < rate
    }

    /// Deterministic strike value (bit + element selector) for an injection
    /// site, fed to `memslab::Slab::flip_bit`.
    fn strike_value(seed: u64, salt: u64, ordinal: u64) -> u64 {
        splitmix64(splitmix64(seed ^ CORRUPT_SALT ^ salt) ^ ordinal)
    }
}

/// Fault settings for one transfer direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFaults {
    /// Probability in `[0, 1]` that any single attempt fails transiently.
    pub transient_rate: f64,
    /// Attempts with ordinal `>= fail_after` fail persistently (dead link).
    pub fail_after: Option<u64>,
    /// Fraction of the nominal transfer time a failed attempt occupies the
    /// engine before the error surfaces.
    pub fail_fraction: f64,
}

impl Default for TransferFaults {
    fn default() -> Self {
        TransferFaults {
            transient_rate: 0.0,
            fail_after: None,
            fail_fraction: 0.5,
        }
    }
}

impl TransferFaults {
    pub fn enabled(&self) -> bool {
        self.transient_rate > 0.0 || self.fail_after.is_some()
    }

    /// Deterministic verdict for the attempt with this ordinal.
    fn faulty(&self, seed: u64, lane: Lane, ordinal: u64) -> bool {
        if self.fail_after.is_some_and(|n| ordinal >= n) {
            return true;
        }
        self.transient_rate > 0.0
            && unit(splitmix64(splitmix64(seed ^ lane.tag()) ^ ordinal)) < self.transient_rate
    }
}

/// A periodic stall on one stream's transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStall {
    /// Stream index (creation order) the stall applies to.
    pub stream: usize,
    /// Every `every`-th transfer enqueued on the stream stalls (1-based).
    pub every: u64,
    /// Time the stall occupies the transfer engine.
    pub stall: SimTime,
}

/// A window of reduced link bandwidth, evaluated against the host clock at
/// enqueue time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeWindow {
    pub from: SimTime,
    pub until: SimTime,
    /// Duration multiplier for transfers enqueued inside the window (`> 1`).
    pub factor: f64,
}

/// A seeded whole-platform abort. The first trigger to fire wins; the
/// triggering operation dies mid-flight (engine occupied for
/// [`CrashFault::fraction`] of its nominal time, no data moved) and every
/// later submission is refused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashFault {
    /// Die on the n-th (1-based) transfer enqueue across the run.
    pub after_transfers: Option<u64>,
    /// Die on the n-th (1-based) kernel launch across the run.
    pub after_kernels: Option<u64>,
    /// Die on the first submission at or past this host-clock time.
    pub at_time: Option<SimTime>,
    /// Fraction of the nominal duration the dying operation occupies its
    /// engine before the platform goes silent.
    pub fraction: f64,
}

impl CrashFault {
    /// Crash on the n-th (1-based) transfer enqueue.
    pub fn at_transfer(n: u64) -> Self {
        CrashFault {
            after_transfers: Some(n),
            after_kernels: None,
            at_time: None,
            fraction: 0.5,
        }
    }

    /// Crash on the n-th (1-based) kernel launch.
    pub fn at_kernel(n: u64) -> Self {
        CrashFault {
            after_transfers: None,
            after_kernels: None,
            at_time: None,
            fraction: 0.5,
        }
        .with_kernels(n)
    }

    fn with_kernels(mut self, n: u64) -> Self {
        self.after_kernels = Some(n);
        self
    }

    pub fn enabled(&self) -> bool {
        self.after_transfers.is_some() || self.after_kernels.is_some() || self.at_time.is_some()
    }
}

/// A wedged stream: past `after_transfers` enqueues it accepts work but
/// never completes it. Modelled as transfers that occupy the engine for
/// `horizon` and move nothing — from the program's view the operation
/// "finishes" (the scheduler stays live) but no progress was made, which is
/// exactly what a supervisor's progress watchdog must detect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LivelockFault {
    /// Stream index (creation order) that wedges.
    pub stream: usize,
    /// The stream behaves for this many transfer enqueues, then wedges.
    pub after_transfers: u64,
    /// Virtual time each wedged transfer burns. Pick this far above any
    /// supervisor progress deadline.
    pub horizon: SimTime,
}

/// Permanent death of one device at a scheduled point.
///
/// Unlike a [`CrashFault`], the rest of the platform keeps running: only
/// submissions touching the dead device are refused (reported faulted with
/// zero duration), surviving devices are untouched, and a runtime can
/// migrate the dead device's regions onto the survivors and resume. The
/// dying operation occupies its engine for [`DeviceDeath::fraction`] of its
/// nominal time, like a crashing one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDeath {
    /// Device index that dies.
    pub device: usize,
    /// Die on the n-th (1-based) in-scope transfer enqueued to the device.
    pub after_transfers: Option<u64>,
    /// Die on the first in-scope submission to the device at or past this
    /// host-clock time.
    pub at_time: Option<SimTime>,
    /// Fraction of the nominal duration the dying operation occupies its
    /// engine before the device goes silent.
    pub fraction: f64,
}

impl DeviceDeath {
    /// Kill `device` on its n-th (1-based) transfer enqueue.
    pub fn at_transfer(device: usize, n: u64) -> Self {
        DeviceDeath {
            device,
            after_transfers: Some(n),
            at_time: None,
            fraction: 0.5,
        }
    }

    /// Kill `device` at the first submission at or past `t`.
    pub fn at_time(device: usize, t: SimTime) -> Self {
        DeviceDeath {
            device,
            after_transfers: None,
            at_time: Some(t),
            fraction: 0.5,
        }
    }

    pub fn enabled(&self) -> bool {
        self.after_transfers.is_some() || self.at_time.is_some()
    }
}

/// A flapping interconnect link on one device: repeating down windows
/// during which every transfer attempt touching the device fails
/// (retryable), generalizing [`DegradeWindow`] to per-device scope and
/// hard failure. Lane fault ordinals do **not** advance inside a down
/// window, so adding a flap to a plan leaves the transient/persistent
/// fault schedule of the surrounding run untouched — a health monitor
/// sees a burst of retries, then clean air once the window closes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// Device whose link flaps.
    pub device: usize,
    /// The first down window opens at this host-clock time.
    pub from: SimTime,
    /// A new down window opens every `period` after `from`.
    pub period: SimTime,
    /// Length of each down window (shorter than `period`).
    pub down: SimTime,
    /// Number of down/up cycles before the link stays up (0 = forever).
    pub cycles: u64,
    /// Fraction of the nominal transfer time a failed attempt occupies
    /// the engine before the error surfaces.
    pub fail_fraction: f64,
}

impl LinkFlap {
    /// A flap of `cycles` windows of `down` out of every `period`,
    /// starting at `from`.
    pub fn new(device: usize, from: SimTime, period: SimTime, down: SimTime, cycles: u64) -> Self {
        LinkFlap {
            device,
            from,
            period,
            down,
            cycles,
            fail_fraction: 0.5,
        }
    }

    /// Whether the link is down at `now` (pure function of the schedule).
    pub fn down_at(&self, now: SimTime) -> bool {
        if self.period == SimTime::ZERO || now < self.from {
            return false;
        }
        let off = now.as_ns() - self.from.as_ns();
        if self.cycles > 0 && off >= self.period.as_ns().saturating_mul(self.cycles) {
            return false;
        }
        (off % self.period.as_ns()) < self.down.as_ns()
    }
}

/// Salt separating cluster-link drop draws from every other seeded stream.
const LINK_DROP_SALT: u64 = 0x4C44_524F;

/// Salt separating cluster-link reorder draws from drop draws.
const LINK_REORDER_SALT: u64 = 0x4C52_4F52;

/// FNV-1a over a link name, folding the name into the seeded draw so two
/// links with the same fault config fail independently.
fn link_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Faults on one *named* cluster link ("ib:0-1", "nvl:2", or `*` for every
/// link): seeded message drops (each drop costs one serialization plus a
/// retransmit timeout before the wire carries the message clean), seeded
/// delivery reordering (a message is held back past later traffic), and
/// deterministic down windows (flap — the sender waits out the window).
///
/// Unlike the device-scoped fault classes, a `LinkFault` carries no mutable
/// state in the simulator: every verdict is a pure function of
/// `(plan seed, link name, per-link message ordinal)`, evaluated by the
/// cluster's network model at send time. The per-link ordinal advances once
/// per *message* (not per retransmit attempt), so adding retransmits never
/// shifts later draws, and flap delays — being time-based — never shift the
/// drop/reorder schedule at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Link name the fault applies to (`*` matches every link).
    pub link: String,
    /// Probability in `[0, 1]` that one transmission attempt is dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that one message's delivery is held back.
    pub reorder_rate: f64,
    /// Extra delivery delay for a reordered message.
    pub reorder_delay: SimTime,
    /// First down window opens at this time (flap disabled if `period` is
    /// zero).
    pub flap_from: SimTime,
    /// A new down window opens every `period` after `flap_from`.
    pub flap_period: SimTime,
    /// Length of each down window (shorter than `flap_period`).
    pub flap_down: SimTime,
    /// Down/up cycles before the link stays up (0 = forever).
    pub flap_cycles: u64,
}

impl LinkFault {
    /// A fault-free descriptor on `link` to build on.
    pub fn on(link: impl Into<String>) -> Self {
        LinkFault {
            link: link.into(),
            drop_rate: 0.0,
            reorder_rate: 0.0,
            reorder_delay: SimTime::ZERO,
            flap_from: SimTime::ZERO,
            flap_period: SimTime::ZERO,
            flap_down: SimTime::ZERO,
            flap_cycles: 0,
        }
    }

    /// Drop each transmission attempt with probability `rate`.
    pub fn drops(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Hold back each message with probability `rate` for `delay`.
    pub fn reorders(mut self, rate: f64, delay: SimTime) -> Self {
        self.reorder_rate = rate;
        self.reorder_delay = delay;
        self
    }

    /// Repeating down windows: `cycles` windows of `down` out of every
    /// `period`, starting at `from` (0 cycles = forever).
    pub fn flaps(mut self, from: SimTime, period: SimTime, down: SimTime, cycles: u64) -> Self {
        self.flap_from = from;
        self.flap_period = period;
        self.flap_down = down;
        self.flap_cycles = cycles;
        self
    }

    /// Whether this fault applies to the named link.
    pub fn applies_to(&self, link: &str) -> bool {
        self.link == "*" || self.link == link
    }

    pub fn enabled(&self) -> bool {
        self.drop_rate > 0.0
            || self.reorder_rate > 0.0
            || (self.flap_period > SimTime::ZERO && self.flap_down > SimTime::ZERO)
    }

    /// How many leading transmission attempts of message `ordinal` on
    /// `link` are dropped (bounded by `max` so a 1.0 drop rate still
    /// terminates). Pure function of `(seed, link, ordinal)`.
    pub fn drop_count(&self, seed: u64, link: &str, ordinal: u64, max: u32) -> u32 {
        if self.drop_rate <= 0.0 || !self.applies_to(link) {
            return 0;
        }
        let base = splitmix64(seed ^ LINK_DROP_SALT ^ link_hash(link));
        let mut drops = 0u32;
        while drops < max {
            let h = splitmix64(base ^ (ordinal | ((drops as u64 + 1) << 48)));
            if unit(h) < self.drop_rate {
                drops += 1;
            } else {
                break;
            }
        }
        drops
    }

    /// Extra delivery delay if message `ordinal` on `link` draws a reorder.
    pub fn reorder_for(&self, seed: u64, link: &str, ordinal: u64) -> Option<SimTime> {
        if self.reorder_rate <= 0.0 || !self.applies_to(link) {
            return None;
        }
        let h = splitmix64(splitmix64(seed ^ LINK_REORDER_SALT ^ link_hash(link)) ^ ordinal);
        (unit(h) < self.reorder_rate).then_some(self.reorder_delay)
    }

    /// If the link is inside a down window at `now`, the time the window
    /// closes; `None` when the link is up. Pure function of the schedule.
    pub fn down_until(&self, now: SimTime) -> Option<SimTime> {
        if self.flap_period == SimTime::ZERO || now < self.flap_from {
            return None;
        }
        let off = now.as_ns() - self.flap_from.as_ns();
        if self.flap_cycles > 0
            && off >= self.flap_period.as_ns().saturating_mul(self.flap_cycles)
        {
            return None;
        }
        let into = off % self.flap_period.as_ns();
        (into < self.flap_down.as_ns()).then(|| {
            SimTime::from_ns(now.as_ns() - into + self.flap_down.as_ns())
        })
    }
}

/// ECC-error accumulation on one device's memory. Each in-scope transfer
/// touching the device draws a seeded correctable-error verdict; past
/// [`EccFault::degrade_after`] accumulated errors the device runs degraded
/// (scrubbing steals bandwidth from every transfer), and past
/// [`EccFault::kill_after`] the device is retired — a [`DeviceDeath`] at
/// an error-history-dependent point. Errors are correctable and silent:
/// no data is harmed, only the error *count* ages the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EccFault {
    /// Device whose memory accumulates errors.
    pub device: usize,
    /// Probability in `[0, 1]` that one transfer draws a correctable error.
    pub error_rate: f64,
    /// Accumulated errors past which transfers run degraded.
    pub degrade_after: u64,
    /// Duration multiplier once degraded (`> 1`).
    pub degrade_factor: f64,
    /// Accumulated errors past which the device is retired
    /// (`None` = degrade only, never die).
    pub kill_after: Option<u64>,
}

impl EccFault {
    pub fn enabled(&self) -> bool {
        self.error_rate > 0.0
    }
}

/// The full seeded fault schedule. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub seed: u64,
    pub h2d: TransferFaults,
    pub d2h: TransferFaults,
    /// 0-based ordinals of `malloc_device` calls that fail.
    pub alloc_fail_nth: Vec<u64>,
    pub stalls: Vec<StreamStall>,
    pub degrade: Vec<DegradeWindow>,
    /// Slowdown factor of the fault-exempt salvage D2H path.
    pub salvage_slowdown: f64,
    /// Seeded whole-platform abort (at most one per run).
    pub crash: Option<CrashFault>,
    /// Streams that wedge mid-run.
    pub livelocks: Vec<LivelockFault>,
    /// Silent bit flips in flight and in device DRAM.
    pub corruption: CorruptionFault,
    /// Scheduled permanent deaths of individual devices.
    pub device_deaths: Vec<DeviceDeath>,
    /// Flapping per-device links (repeating down windows).
    pub link_flaps: Vec<LinkFlap>,
    /// Faults on named cluster links (drop/reorder/flap), evaluated as
    /// pure functions by the cluster network model — the simulator itself
    /// never reads them.
    pub link_faults: Vec<LinkFault>,
    /// Per-device ECC-error accumulation (degrade, then die).
    pub ecc: Vec<EccFault>,
    /// Restrict injection to submissions tagged with this tenant
    /// ([`crate::GpuSystem::set_tenant`]). Other tenants' (and untenanted)
    /// submissions pass through clean *without advancing any fault
    /// ordinal*, so the scoped tenant's fault schedule is a pure function
    /// of its own operation sequence, not of who else shares the platform.
    /// A crash still kills the whole platform once it fires — only its
    /// *trigger counters* are scoped. `None` (the default) injects into
    /// everything, bit-identical to the pre-tenant behaviour.
    pub scope_tenant: Option<u32>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing; all simulator paths stay bit-identical
    /// to a build without the fault layer.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            h2d: TransferFaults::default(),
            d2h: TransferFaults::default(),
            alloc_fail_nth: Vec::new(),
            stalls: Vec::new(),
            degrade: Vec::new(),
            salvage_slowdown: 4.0,
            crash: None,
            livelocks: Vec::new(),
            corruption: CorruptionFault::default(),
            device_deaths: Vec::new(),
            link_flaps: Vec::new(),
            link_faults: Vec::new(),
            ecc: Vec::new(),
            scope_tenant: None,
        }
    }

    /// Scope every injection trigger to one tenant's submissions.
    pub fn scoped_to(mut self, tenant: u32) -> Self {
        self.scope_tenant = Some(tenant);
        self
    }

    /// Install a silent-corruption schedule.
    pub fn with_corruption(mut self, corruption: CorruptionFault) -> Self {
        self.corruption = corruption;
        self
    }

    /// Install a crash fault.
    pub fn with_crash(mut self, crash: CrashFault) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Schedule one device's permanent death.
    pub fn with_device_death(mut self, death: DeviceDeath) -> Self {
        self.device_deaths.push(death);
        self
    }

    /// Install a flapping link on one device.
    pub fn with_link_flap(mut self, flap: LinkFlap) -> Self {
        self.link_flaps.push(flap);
        self
    }

    /// Install a fault on a named cluster link.
    pub fn with_link_fault(mut self, fault: LinkFault) -> Self {
        self.link_faults.push(fault);
        self
    }

    /// Install an ECC-error-accumulation model on one device.
    pub fn with_ecc(mut self, ecc: EccFault) -> Self {
        self.ecc.push(ecc);
        self
    }

    /// Wedge `stream` after `after_transfers` enqueues.
    pub fn with_livelock(mut self, stream: usize, after_transfers: u64, horizon: SimTime) -> Self {
        self.livelocks.push(LivelockFault {
            stream,
            after_transfers,
            horizon,
        });
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Transient faults on both transfer directions at the given rate.
    pub fn with_transient(mut self, rate: f64) -> Self {
        self.h2d.transient_rate = rate;
        self.d2h.transient_rate = rate;
        self
    }

    pub fn enabled(&self) -> bool {
        self.h2d.enabled()
            || self.d2h.enabled()
            || !self.alloc_fail_nth.is_empty()
            || !self.stalls.is_empty()
            || !self.degrade.is_empty()
            || self.crash.as_ref().is_some_and(CrashFault::enabled)
            || !self.livelocks.is_empty()
            || self.corruption.enabled()
            || self.device_deaths.iter().any(DeviceDeath::enabled)
            || !self.link_flaps.is_empty()
            || self.link_faults.iter().any(LinkFault::enabled)
            || self.ecc.iter().any(EccFault::enabled)
    }

    /// Whether any device-scoped fault class is configured (gates the
    /// per-device bookkeeping off the hot path when unused).
    fn device_scoped(&self) -> bool {
        !self.device_deaths.is_empty() || !self.link_flaps.is_empty() || !self.ecc.is_empty()
    }

    /// Largest degrade factor of any window open at `now` (1.0 when none).
    fn degrade_factor(&self, now: SimTime) -> f64 {
        self.degrade
            .iter()
            .filter(|w| w.from <= now && now < w.until)
            .map(|w| w.factor)
            .fold(1.0, f64::max)
    }

    /// Stall due before the `count`-th (1-based) transfer on `stream`.
    fn stall_for(&self, stream: usize, count: u64) -> Option<SimTime> {
        self.stalls
            .iter()
            .find(|s| s.stream == stream && s.every > 0 && count.is_multiple_of(s.every))
            .map(|s| s.stall)
    }
}

/// Counters accumulated by the fault layer over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transfer attempts per lane (counted only while a plan is active).
    pub h2d_attempts: u64,
    pub d2h_attempts: u64,
    /// Faulted attempts per lane.
    pub h2d_faults: u64,
    pub d2h_faults: u64,
    /// `malloc_device` calls refused by the plan.
    pub alloc_faults: u64,
    /// Stalls injected ahead of transfers.
    pub stalls: u64,
    /// Transfers enqueued inside a degrade window.
    pub degraded: u64,
    /// Fault-exempt salvage copies issued.
    pub salvages: u64,
    /// Seeded platform crashes that fired (0 or 1).
    pub crashes: u64,
    /// Transfers swallowed by a wedged (livelocked) stream.
    pub livelocked: u64,
    /// In-flight transfer corruptions injected (counting each corrupted
    /// retransmit separately).
    pub corruptions: u64,
    /// Resident device-DRAM strikes injected.
    pub resident_strikes: u64,
    /// Devices permanently retired (scheduled death or ECC kill).
    pub device_deaths: u64,
    /// Transfer attempts failed inside a link-flap down window.
    pub flap_faults: u64,
    /// Correctable ECC errors drawn (silent; they age the device).
    pub ecc_errors: u64,
    /// Transfers stretched by ECC-degraded device memory.
    pub ecc_degraded: u64,
    /// Engine time consumed by faulted attempts and injected stalls — the
    /// raw material of the recovery time a run report accounts for.
    pub lost_time: SimTime,
}

impl FaultStats {
    /// Total injected fault events (transfer faults, refused allocations,
    /// stalls, crashes, livelocked transfers).
    pub fn events(&self) -> u64 {
        self.h2d_faults
            + self.d2h_faults
            + self.alloc_faults
            + self.stalls
            + self.crashes
            + self.livelocked
            + self.corruptions
            + self.resident_strikes
            + self.device_deaths
            + self.flap_faults
            + self.ecc_errors
    }
}

/// Corruption verdict for one transfer, decided at enqueue time so the
/// engine occupancy (original send + retransmits) is part of the
/// deterministic schedule regardless of whether the run is backed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CorruptVerdict {
    /// How many leading copy attempts arrive corrupted (attempt 0 is the
    /// original send). The effect layer flips/verifies/re-copies this many
    /// times on real data.
    pub(crate) corrupt_attempts: u32,
    /// All `1 + max_retransmits` attempts were corrupted: the destination
    /// is left poisoned.
    pub(crate) unrepaired: bool,
    /// Seeded bit/element selector for the injected flips.
    pub(crate) strike: u64,
    /// A clean resident strike lands on this transfer's destination after
    /// it settles (`strike_after_h2d`).
    pub(crate) resident_strike: Option<u64>,
}

/// Verdict for one transfer enqueue: how long the op occupies its engine,
/// whether it failed (retryable), whether it was swallowed by a wedged
/// stream (not retryable — it "completes" without effect), and any stall
/// the caller must submit ahead of it.
pub(crate) struct XferVerdict {
    pub(crate) duration: SimTime,
    pub(crate) faulted: bool,
    pub(crate) livelocked: bool,
    pub(crate) stall: Option<SimTime>,
    /// Silent-corruption verdict (`None` when this transfer is clean).
    pub(crate) corrupt: Option<CorruptVerdict>,
}

impl XferVerdict {
    fn clean(duration: SimTime) -> Self {
        XferVerdict {
            duration,
            faulted: false,
            livelocked: false,
            stall: None,
            corrupt: None,
        }
    }
}

/// Runtime state of the fault layer inside a [`crate::GpuSystem`].
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) stats: FaultStats,
    /// `malloc_device` ordinal counter.
    allocs: u64,
    /// Per-stream transfer enqueue counters (for stalls).
    stream_xfers: HashMap<usize, u64>,
    /// Global transfer / kernel enqueue counters (for crash triggers).
    xfer_total: u64,
    kernel_total: u64,
    /// Set once a crash fault fires; the platform is dead afterwards.
    crashed: bool,
    /// Devices retired by a death or ECC-kill fault; submissions touching
    /// them are refused, whoever submits them.
    dead_devices: HashSet<usize>,
    /// Per-device transfer enqueue counters (death and ECC triggers).
    device_xfers: HashMap<usize, u64>,
    /// Per-device accumulated correctable-ECC-error counts.
    ecc_counts: HashMap<usize, u64>,
    /// Cached [`FaultPlan::device_scoped`] (hot-path gate).
    device_scoped: bool,
    /// Ops that represent failed attempts.
    faulted: HashSet<desim::OpId>,
    /// Tenant tag of the submissions currently being enqueued (mirrors
    /// [`crate::GpuSystem::set_tenant`]); evaluated against
    /// [`FaultPlan::scope_tenant`].
    pub(crate) current_tenant: Option<u32>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let device_scoped = plan.device_scoped();
        FaultState {
            plan,
            stats: FaultStats::default(),
            allocs: 0,
            stream_xfers: HashMap::new(),
            xfer_total: 0,
            kernel_total: 0,
            crashed: false,
            dead_devices: HashSet::new(),
            device_xfers: HashMap::new(),
            ecc_counts: HashMap::new(),
            device_scoped,
            faulted: HashSet::new(),
            current_tenant: None,
        }
    }

    /// Whether the submission being enqueued is eligible for injection
    /// under the plan's tenant scope.
    fn in_scope(&self) -> bool {
        self.plan
            .scope_tenant
            .is_none_or(|t| self.current_tenant == Some(t))
    }

    pub(crate) fn enabled(&self) -> bool {
        self.plan.enabled()
    }

    pub(crate) fn crashed(&self) -> bool {
        self.crashed
    }

    /// Whether `device` has been retired by a death or ECC-kill fault.
    pub(crate) fn device_lost(&self, device: usize) -> bool {
        self.device_scoped && self.dead_devices.contains(&device)
    }

    /// Record a non-transfer submission touching `device` (kernel launch,
    /// peer copy endpoint): fires time-triggered device deaths. Returns
    /// `true` when the device dies on exactly this submission — the
    /// operation dies mid-flight like a crashing one.
    pub(crate) fn device_submission(&mut self, device: usize, now: SimTime) -> bool {
        if !self.device_scoped
            || !self.enabled()
            || self.crashed
            || self.dead_devices.contains(&device)
            || !self.in_scope()
        {
            return false;
        }
        let due = self
            .plan
            .device_deaths
            .iter()
            .any(|d| d.device == device && d.at_time.is_some_and(|t| now >= t));
        if due {
            self.dead_devices.insert(device);
            self.stats.device_deaths += 1;
        }
        due
    }

    /// A death trigger due for `device` given its transfer count, if any.
    fn death_due(&self, device: usize, count: u64, now: SimTime) -> Option<f64> {
        self.plan
            .device_deaths
            .iter()
            .find(|d| {
                d.device == device
                    && (d.after_transfers.is_some_and(|n| count >= n)
                        || d.at_time.is_some_and(|t| now >= t))
            })
            .map(|d| d.fraction)
    }

    /// Retire `device`; the triggering transfer dies mid-flight, occupying
    /// its engine for `fraction` of its (possibly stretched) duration.
    fn kill_device(&mut self, device: usize, duration: SimTime, fraction: f64) -> XferVerdict {
        self.dead_devices.insert(device);
        self.stats.device_deaths += 1;
        let frac = fraction.clamp(0.0, 1.0);
        let duration = SimTime::from_ns((duration.as_ns() as f64 * frac).round() as u64);
        self.stats.lost_time += duration;
        XferVerdict {
            duration,
            faulted: true,
            livelocked: false,
            stall: None,
            corrupt: None,
        }
    }

    /// Whether a crash trigger fires given the counters advanced so far.
    fn crash_due(&self, now: SimTime) -> bool {
        let Some(c) = &self.plan.crash else {
            return false;
        };
        c.after_transfers.is_some_and(|n| self.xfer_total >= n)
            || c.after_kernels.is_some_and(|n| self.kernel_total >= n)
            || c.at_time.is_some_and(|t| now >= t)
    }

    fn note_crash(&mut self) {
        self.crashed = true;
        self.stats.crashes += 1;
    }

    /// Record a kernel launch; returns `true` when the crash fault fires on
    /// exactly this launch (the kernel dies mid-flight: it occupies the
    /// engine but its effect must be dropped).
    pub(crate) fn kernel_enqueue(&mut self, now: SimTime) -> bool {
        if !self.enabled() || self.crashed || !self.in_scope() {
            return false;
        }
        self.kernel_total += 1;
        if self.crash_due(now) {
            self.note_crash();
            return true;
        }
        false
    }

    /// Whether the next `malloc_device` call on `device` is refused by the
    /// plan. A dead device refuses every allocation without consuming an
    /// ordinal — the scheduled refusals stay pinned to the live sequence.
    pub(crate) fn alloc_refused(&mut self, device: usize) -> bool {
        if !self.enabled() {
            return false;
        }
        if self.device_lost(device) {
            self.stats.alloc_faults += 1;
            return true;
        }
        if !self.in_scope() {
            return false;
        }
        let n = self.allocs;
        self.allocs += 1;
        if self.plan.alloc_fail_nth.contains(&n) {
            self.stats.alloc_faults += 1;
            true
        } else {
            false
        }
    }

    /// Fault verdict and adjusted duration for one transfer attempt. The
    /// caller submits the stall op (if any) ahead of the transfer.
    pub(crate) fn transfer_enqueue(
        &mut self,
        lane: Lane,
        device: usize,
        stream: usize,
        now: SimTime,
        nominal: SimTime,
    ) -> XferVerdict {
        if !self.enabled() {
            return XferVerdict::clean(nominal);
        }
        if self.crashed || self.device_lost(device) {
            // Dead platform or dead device: the submission is refused
            // outright. Zero duration, no data; report it as faulted so
            // callers notice. A dead device refuses *everyone* — the loss
            // is physical, whatever tenant scope triggered it.
            return XferVerdict {
                duration: SimTime::ZERO,
                faulted: true,
                livelocked: false,
                stall: None,
                corrupt: None,
            };
        }
        if !self.in_scope() {
            // Out-of-scope tenants see a pristine platform: no verdict, no
            // ordinal advance — the scoped tenant's schedule stays a pure
            // function of its own ops.
            return XferVerdict::clean(nominal);
        }
        self.xfer_total += 1;
        if self.crash_due(now) {
            // This transfer is the one that kills the platform: it dies
            // mid-flight, holding the engine for a fraction of its time.
            self.note_crash();
            let frac = self
                .plan
                .crash
                .as_ref()
                .map(|c| c.fraction.clamp(0.0, 1.0))
                .unwrap_or(0.5);
            let duration = SimTime::from_ns((nominal.as_ns() as f64 * frac).round() as u64);
            self.stats.lost_time += duration;
            return XferVerdict {
                duration,
                faulted: true,
                livelocked: false,
                stall: None,
                corrupt: None,
            };
        }
        let mut duration = nominal;
        if self.device_scoped {
            // Per-device triggers: scheduled death, then ECC accumulation.
            let count = {
                let c = self.device_xfers.entry(device).or_insert(0);
                *c += 1;
                *c
            };
            if let Some(frac) = self.death_due(device, count, now) {
                return self.kill_device(device, nominal, frac);
            }
            if let Some(e) = self.plan.ecc.iter().find(|e| e.device == device).cloned() {
                let ord = count - 1;
                if e.error_rate > 0.0
                    && unit(splitmix64(
                        splitmix64(self.plan.seed ^ ECC_SALT ^ ((device as u64) << 32)) ^ ord,
                    )) < e.error_rate
                {
                    *self.ecc_counts.entry(device).or_insert(0) += 1;
                    self.stats.ecc_errors += 1;
                }
                let errors = self.ecc_counts.get(&device).copied().unwrap_or(0);
                if e.kill_after.is_some_and(|k| errors >= k) {
                    return self.kill_device(device, nominal, 0.5);
                }
                if errors >= e.degrade_after.max(1) && e.degrade_factor > 1.0 {
                    // Scrubbing steals bandwidth: every transfer on the
                    // aged device is stretched.
                    duration = SimTime::from_ns(
                        (duration.as_ns() as f64 * e.degrade_factor).round() as u64,
                    );
                    self.stats.ecc_degraded += 1;
                }
            }
        }
        let factor = self.plan.degrade_factor(now);
        if factor > 1.0 {
            duration = SimTime::from_ns((duration.as_ns() as f64 * factor).round() as u64);
            self.stats.degraded += 1;
        }
        let count = {
            let c = self.stream_xfers.entry(stream).or_insert(0);
            *c += 1;
            *c
        };
        if let Some(l) = self
            .plan
            .livelocks
            .iter()
            .find(|l| l.stream == stream && count > l.after_transfers)
        {
            // Wedged stream: the transfer is accepted and occupies the
            // engine for the horizon, but never moves data. It is NOT
            // reported as faulted — from the program's view it completed.
            self.stats.livelocked += 1;
            self.stats.lost_time += l.horizon;
            return XferVerdict {
                duration: l.horizon,
                faulted: false,
                livelocked: true,
                stall: None,
                corrupt: None,
            };
        }
        if self.device_scoped {
            if let Some(fl) = self
                .plan
                .link_flaps
                .iter()
                .find(|f| f.device == device && f.down_at(now))
            {
                // Link down: the attempt fails *without advancing any lane
                // ordinal*, so adding a flap leaves the surrounding
                // transient/persistent fault schedule untouched. Retries
                // keep failing until the window closes.
                let frac = fl.fail_fraction.clamp(0.0, 1.0);
                let d = SimTime::from_ns((duration.as_ns() as f64 * frac).round() as u64);
                self.stats.flap_faults += 1;
                self.stats.lost_time += d;
                return XferVerdict {
                    duration: d,
                    faulted: true,
                    livelocked: false,
                    stall: None,
                    corrupt: None,
                };
            }
        }
        let stall = self.plan.stall_for(stream, count);
        if let Some(s) = stall {
            self.stats.stalls += 1;
            self.stats.lost_time += s;
        }
        let (faults, ordinal) = match lane {
            Lane::H2d => {
                self.stats.h2d_attempts += 1;
                (&self.plan.h2d, self.stats.h2d_attempts - 1)
            }
            Lane::D2h => {
                self.stats.d2h_attempts += 1;
                (&self.plan.d2h, self.stats.d2h_attempts - 1)
            }
        };
        let faulted = faults.faulty(self.plan.seed, lane, ordinal);
        if faulted {
            let frac = faults.fail_fraction.clamp(0.0, 1.0);
            duration = SimTime::from_ns((duration.as_ns() as f64 * frac).round() as u64);
            match lane {
                Lane::H2d => self.stats.h2d_faults += 1,
                Lane::D2h => self.stats.d2h_faults += 1,
            }
            self.stats.lost_time += duration;
            return XferVerdict {
                duration,
                faulted,
                livelocked: false,
                stall,
                corrupt: None,
            };
        }
        // A clean attempt can still be silently corrupted. The verdict is
        // decided here so the retransmit engine time is part of the
        // schedule; the effect layer performs the actual flips/repairs.
        let corrupt = self.corruption_verdict(lane, ordinal, &mut duration);
        XferVerdict {
            duration,
            faulted: false,
            livelocked: false,
            stall,
            corrupt,
        }
    }

    /// Decide whether the transfer with this ordinal suffers in-flight
    /// corruption and/or a post-landing resident strike, stretching
    /// `duration` by one nominal transfer time per retransmit.
    fn corruption_verdict(
        &mut self,
        lane: Lane,
        ordinal: u64,
        duration: &mut SimTime,
    ) -> Option<CorruptVerdict> {
        let c = &self.plan.corruption;
        if !c.enabled() {
            return None;
        }
        let attempts_budget = 1 + c.max_retransmits;
        let mut corrupt_attempts = 0u32;
        while corrupt_attempts < attempts_budget
            && c.attempt_corrupt(self.plan.seed, lane, ordinal, corrupt_attempts)
        {
            corrupt_attempts += 1;
        }
        let unrepaired = corrupt_attempts == attempts_budget;
        let retransmits = corrupt_attempts.min(c.max_retransmits);
        let resident_strike = (lane == Lane::H2d && c.strike_after_h2d.contains(&ordinal))
            .then(|| CorruptionFault::strike_value(self.plan.seed, 0x4452_414d, ordinal));
        if corrupt_attempts == 0 && resident_strike.is_none() {
            return None;
        }
        if retransmits > 0 {
            let extra = SimTime::from_ns(duration.as_ns().saturating_mul(retransmits as u64));
            *duration += extra;
            self.stats.lost_time += extra;
        }
        self.stats.corruptions += corrupt_attempts as u64;
        if resident_strike.is_some() {
            self.stats.resident_strikes += 1;
        }
        Some(CorruptVerdict {
            corrupt_attempts,
            unrepaired,
            strike: CorruptionFault::strike_value(self.plan.seed, lane.tag(), ordinal),
            resident_strike,
        })
    }

    /// Resident strike due after the most recent kernel launch (call after
    /// [`FaultState::kernel_enqueue`] returned `false`). Targets the data
    /// the kernel just wrote — dirty, so the host copy is stale.
    pub(crate) fn kernel_strike(&mut self) -> Option<u64> {
        if !self.enabled() || self.crashed || !self.in_scope() || self.kernel_total == 0 {
            return None;
        }
        let ordinal = self.kernel_total - 1;
        if self.plan.corruption.strike_after_kernel.contains(&ordinal) {
            self.stats.resident_strikes += 1;
            Some(CorruptionFault::strike_value(
                self.plan.seed,
                0x4b52_4e4c,
                ordinal,
            ))
        } else {
            None
        }
    }

    pub(crate) fn mark_faulted(&mut self, op: desim::OpId) {
        self.faulted.insert(op);
    }

    pub(crate) fn is_faulted(&self, op: desim::OpId) -> bool {
        self.faulted.contains(&op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_disabled_and_neutral() {
        let mut st = FaultState::new(FaultPlan::none());
        assert!(!st.enabled());
        assert!(!st.alloc_refused(0));
        assert!(!st.crashed());
        assert!(!st.kernel_enqueue(SimTime::ZERO));
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, SimTime::from_us(10));
        assert_eq!(v.duration, SimTime::from_us(10));
        assert!(!v.faulted);
        assert!(!v.livelocked);
        assert!(v.stall.is_none());
        assert_eq!(
            st.stats,
            FaultStats::default(),
            "disabled plan counts nothing"
        );
    }

    #[test]
    fn transient_decisions_are_deterministic_and_seeded() {
        let plan = FaultPlan::none().with_seed(7).with_transient(0.3);
        let verdicts: Vec<bool> = (0..64).map(|i| plan.h2d.faulty(7, Lane::H2d, i)).collect();
        let again: Vec<bool> = (0..64).map(|i| plan.h2d.faulty(7, Lane::H2d, i)).collect();
        assert_eq!(verdicts, again, "same seed, same verdicts");
        assert!(
            verdicts.iter().any(|&v| v),
            "rate 0.3 over 64 attempts faults"
        );
        assert!(
            verdicts.iter().any(|&v| !v),
            "rate 0.3 over 64 attempts passes"
        );
        let other: Vec<bool> = (0..64).map(|i| plan.h2d.faulty(8, Lane::H2d, i)).collect();
        assert_ne!(verdicts, other, "different seed, different schedule");
    }

    #[test]
    fn persistent_fails_every_attempt_past_threshold() {
        let tf = TransferFaults {
            fail_after: Some(3),
            ..TransferFaults::default()
        };
        assert!(!tf.faulty(0, Lane::D2h, 2));
        assert!(tf.faulty(0, Lane::D2h, 3));
        assert!(tf.faulty(0, Lane::D2h, 1000));
    }

    #[test]
    fn degrade_window_and_stall_apply() {
        let mut plan = FaultPlan::none();
        plan.degrade.push(DegradeWindow {
            from: SimTime::from_us(10),
            until: SimTime::from_us(20),
            factor: 3.0,
        });
        plan.stalls.push(StreamStall {
            stream: 1,
            every: 2,
            stall: SimTime::from_us(5),
        });
        let mut st = FaultState::new(plan);
        // Outside the window, stream 1, first transfer: nothing.
        let v = st.transfer_enqueue(Lane::H2d, 0, 1, SimTime::ZERO, SimTime::from_us(4));
        assert_eq!(v.duration, SimTime::from_us(4));
        assert!(v.stall.is_none());
        // Inside the window, second transfer on stream 1: degraded + stalled.
        let v = st.transfer_enqueue(Lane::H2d, 0, 1, SimTime::from_us(15), SimTime::from_us(4));
        assert_eq!(v.duration, SimTime::from_us(12));
        assert_eq!(v.stall, Some(SimTime::from_us(5)));
        assert_eq!(st.stats.degraded, 1);
        assert_eq!(st.stats.stalls, 1);
    }

    #[test]
    fn crash_fires_on_exact_transfer_and_kills_later_work() {
        let plan = FaultPlan::none().with_crash(CrashFault::at_transfer(3));
        let mut st = FaultState::new(plan);
        let nominal = SimTime::from_us(10);
        for _ in 0..2 {
            let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
            assert!(!v.faulted);
        }
        assert!(!st.crashed());
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(v.faulted, "crashing transfer dies mid-flight");
        assert_eq!(v.duration, SimTime::from_us(5), "fraction 0.5 of nominal");
        assert!(st.crashed());
        assert_eq!(st.stats.crashes, 1);
        // Everything after the crash is refused with zero duration.
        let v = st.transfer_enqueue(Lane::D2h, 0, 1, SimTime::ZERO, nominal);
        assert!(v.faulted);
        assert_eq!(v.duration, SimTime::ZERO);
        assert!(!st.kernel_enqueue(SimTime::ZERO), "dead, not crashing anew");
        assert_eq!(st.stats.crashes, 1, "a platform only dies once");
    }

    #[test]
    fn crash_fires_on_kernel_or_time_trigger() {
        let mut st = FaultState::new(FaultPlan::none().with_crash(CrashFault::at_kernel(2)));
        assert!(!st.kernel_enqueue(SimTime::ZERO));
        assert!(st.kernel_enqueue(SimTime::ZERO), "second launch crashes");
        assert!(st.crashed());

        let mut st = FaultState::new(FaultPlan::none().with_crash(CrashFault {
            after_transfers: None,
            after_kernels: None,
            at_time: Some(SimTime::from_us(10)),
            fraction: 0.5,
        }));
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::from_us(5), SimTime::from_us(4));
        assert!(!v.faulted, "before the deadline");
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::from_us(11), SimTime::from_us(4));
        assert!(v.faulted, "first submission past the deadline dies");
        assert!(st.crashed());
    }

    #[test]
    fn livelocked_stream_swallows_transfers_without_fault_verdict() {
        let horizon = SimTime::from_ms(100u64);
        let plan = FaultPlan::none().with_livelock(2, 1, horizon);
        let mut st = FaultState::new(plan);
        let v = st.transfer_enqueue(Lane::H2d, 0, 2, SimTime::ZERO, SimTime::from_us(4));
        assert!(!v.livelocked, "first transfer passes");
        let v = st.transfer_enqueue(Lane::H2d, 0, 2, SimTime::ZERO, SimTime::from_us(4));
        assert!(v.livelocked, "second transfer wedges");
        assert!(!v.faulted, "livelock is not a retryable fault");
        assert_eq!(v.duration, horizon);
        // Other streams are unaffected.
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, SimTime::from_us(4));
        assert!(!v.livelocked);
        assert_eq!(st.stats.livelocked, 1);
        assert_eq!(st.stats.lost_time, horizon);
    }

    #[test]
    fn corruption_default_is_disabled_and_invisible() {
        assert!(!CorruptionFault::default().enabled());
        let mut st = FaultState::new(FaultPlan::none().with_seed(9));
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, SimTime::from_us(10));
        assert!(v.corrupt.is_none());
        assert_eq!(v.duration, SimTime::from_us(10));
        assert_eq!(st.stats.corruptions, 0);
    }

    #[test]
    fn certain_corruption_exhausts_retransmits_and_poisons() {
        let plan = FaultPlan::none()
            .with_seed(3)
            .with_corruption(CorruptionFault {
                h2d_rate: 1.0,
                max_retransmits: 2,
                ..CorruptionFault::default()
            });
        let mut st = FaultState::new(plan);
        let nominal = SimTime::from_us(10);
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        let c = v.corrupt.expect("rate 1.0 always corrupts");
        assert_eq!(c.corrupt_attempts, 3, "original + 2 retransmits all flip");
        assert!(c.unrepaired, "budget exhausted leaves the dst poisoned");
        assert_eq!(
            v.duration,
            SimTime::from_us(30),
            "each retransmit re-occupies the engine"
        );
        assert!(!v.faulted, "corruption is silent, never an error verdict");
        assert_eq!(st.stats.corruptions, 3);
        // D2H lane is untouched by an H2D-only schedule.
        let v = st.transfer_enqueue(Lane::D2h, 0, 0, SimTime::ZERO, nominal);
        assert!(v.corrupt.is_none());
    }

    #[test]
    fn corruption_verdicts_are_seeded_and_deterministic() {
        let verdicts = |seed: u64| -> Vec<(u32, bool)> {
            let plan = FaultPlan::none()
                .with_seed(seed)
                .with_corruption(CorruptionFault {
                    d2h_rate: 0.3,
                    ..CorruptionFault::default()
                });
            let mut st = FaultState::new(plan);
            (0..64)
                .map(|_| {
                    let v =
                        st.transfer_enqueue(Lane::D2h, 0, 0, SimTime::ZERO, SimTime::from_us(10));
                    v.corrupt
                        .map(|c| (c.corrupt_attempts, c.unrepaired))
                        .unwrap_or((0, false))
                })
                .collect()
        };
        assert_eq!(verdicts(5), verdicts(5), "same seed, same schedule");
        assert_ne!(verdicts(5), verdicts(6), "different seed differs");
        assert!(verdicts(5).iter().any(|&(n, _)| n > 0), "rate 0.3 strikes");
        assert!(verdicts(5).iter().any(|&(n, _)| n == 0), "rate 0.3 passes");
    }

    #[test]
    fn resident_strikes_fire_on_exact_ordinals() {
        let plan = FaultPlan::none().with_corruption(CorruptionFault {
            strike_after_h2d: vec![1],
            strike_after_kernel: vec![2],
            ..CorruptionFault::default()
        });
        let mut st = FaultState::new(plan);
        let nominal = SimTime::from_us(10);
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(v.corrupt.is_none(), "ordinal 0 is clean");
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        let c = v.corrupt.expect("ordinal 1 is struck");
        assert!(c.resident_strike.is_some());
        assert_eq!(c.corrupt_attempts, 0, "a resident strike is not in-flight");
        assert_eq!(v.duration, nominal, "no retransmit cost for a strike");

        assert!(!st.kernel_enqueue(SimTime::ZERO));
        assert!(st.kernel_strike().is_none(), "kernel ordinal 0");
        assert!(!st.kernel_enqueue(SimTime::ZERO));
        assert!(st.kernel_strike().is_none(), "kernel ordinal 1");
        assert!(!st.kernel_enqueue(SimTime::ZERO));
        assert!(st.kernel_strike().is_some(), "kernel ordinal 2 is struck");
        assert_eq!(st.stats.resident_strikes, 2);
    }

    #[test]
    fn tenant_scope_gates_injection_and_freezes_ordinals() {
        let mut plan = FaultPlan::none().with_seed(1).scoped_to(7);
        plan.h2d.fail_after = Some(0); // every in-scope H2D attempt fails
        let nominal = SimTime::from_us(10);
        let mut st = FaultState::new(plan);
        // Untenanted and other-tenant submissions pass clean and advance
        // no ordinal.
        for tag in [None, Some(3)] {
            st.current_tenant = tag;
            let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
            assert!(!v.faulted, "{tag:?} is out of scope");
            assert_eq!(v.duration, nominal);
        }
        assert_eq!(st.stats.h2d_attempts, 0, "out-of-scope ops count nothing");
        // The scoped tenant still sees its full schedule, starting at
        // ordinal 0 as if it were alone on the platform.
        st.current_tenant = Some(7);
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(v.faulted, "scoped tenant's first attempt faults");
        assert_eq!(st.stats.h2d_attempts, 1);
        assert_eq!(st.stats.h2d_faults, 1);
        // Alloc refusals and kernel strikes are scoped the same way.
        let mut plan = FaultPlan::none().scoped_to(7);
        plan.alloc_fail_nth = vec![0];
        let mut st = FaultState::new(plan);
        st.current_tenant = Some(3);
        assert!(!st.alloc_refused(0), "other tenant's alloc passes");
        st.current_tenant = Some(7);
        assert!(st.alloc_refused(0), "scoped tenant hits ordinal 0");
    }

    #[test]
    fn scoped_crash_triggers_on_tenant_ops_but_kills_everyone() {
        let plan = FaultPlan::none()
            .with_crash(CrashFault::at_transfer(2))
            .scoped_to(7);
        let mut st = FaultState::new(plan);
        let nominal = SimTime::from_us(10);
        // Other tenants' transfers do not advance the crash trigger.
        st.current_tenant = Some(3);
        for _ in 0..5 {
            let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
            assert!(!v.faulted);
        }
        assert!(!st.crashed());
        // The scoped tenant's second transfer fires the crash...
        st.current_tenant = Some(7);
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(!v.faulted);
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(v.faulted, "trigger counts only scoped ops");
        assert!(st.crashed());
        // ...and the dead platform then refuses everyone, scope or not.
        st.current_tenant = Some(3);
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(v.faulted, "a crash is platform-wide");
        assert_eq!(v.duration, SimTime::ZERO);
    }

    #[test]
    fn alloc_refusal_targets_exact_ordinals() {
        let mut plan = FaultPlan::none();
        plan.alloc_fail_nth = vec![1, 3];
        let mut st = FaultState::new(plan);
        let refusals: Vec<bool> = (0..5).map(|_| st.alloc_refused(0)).collect();
        assert_eq!(refusals, vec![false, true, false, true, false]);
        assert_eq!(st.stats.alloc_faults, 2);
    }

    #[test]
    fn device_death_kills_one_device_and_spares_the_rest() {
        let plan = FaultPlan::none().with_device_death(DeviceDeath::at_transfer(1, 2));
        let mut st = FaultState::new(plan);
        let nominal = SimTime::from_us(10);
        // Device 0 is never touched by device 1's death.
        for _ in 0..4 {
            let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
            assert!(!v.faulted, "device 0 stays healthy");
        }
        assert!(!st.device_lost(1));
        let v = st.transfer_enqueue(Lane::H2d, 1, 1, SimTime::ZERO, nominal);
        assert!(!v.faulted, "device 1's first transfer passes");
        let v = st.transfer_enqueue(Lane::H2d, 1, 1, SimTime::ZERO, nominal);
        assert!(v.faulted, "second transfer on device 1 kills it");
        assert_eq!(v.duration, SimTime::from_us(5), "fraction 0.5 of nominal");
        assert!(st.device_lost(1));
        assert!(!st.crashed(), "a device death is not a platform crash");
        assert_eq!(st.stats.device_deaths, 1);
        // Everything on the dead device is refused; device 0 keeps working.
        let v = st.transfer_enqueue(Lane::D2h, 1, 1, SimTime::ZERO, nominal);
        assert!(v.faulted);
        assert_eq!(v.duration, SimTime::ZERO);
        assert!(st.alloc_refused(1), "dead device refuses allocations");
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(!v.faulted, "survivor is untouched");
        assert_eq!(st.stats.device_deaths, 1, "a device only dies once");
    }

    #[test]
    fn device_death_at_time_fires_on_any_submission() {
        let plan =
            FaultPlan::none().with_device_death(DeviceDeath::at_time(0, SimTime::from_us(10)));
        let mut st = FaultState::new(plan);
        assert!(
            !st.device_submission(0, SimTime::from_us(5)),
            "before the deadline"
        );
        assert!(
            st.device_submission(0, SimTime::from_us(11)),
            "first submission past the deadline dies"
        );
        assert!(st.device_lost(0));
        assert!(
            !st.device_submission(0, SimTime::from_us(12)),
            "already dead, not dying anew"
        );
        assert_eq!(st.stats.device_deaths, 1);
    }

    #[test]
    fn link_flap_windows_fail_without_advancing_lane_ordinals() {
        let flap = LinkFlap::new(
            0,
            SimTime::from_us(10),
            SimTime::from_us(20),
            SimTime::from_us(5),
            2,
        );
        assert!(
            !flap.down_at(SimTime::from_us(5)),
            "before the first window"
        );
        assert!(flap.down_at(SimTime::from_us(12)), "inside window 1");
        assert!(!flap.down_at(SimTime::from_us(16)), "between windows");
        assert!(flap.down_at(SimTime::from_us(33)), "inside window 2");
        assert!(
            !flap.down_at(SimTime::from_us(52)),
            "cycle budget exhausted: the link stays up"
        );
        let plan = FaultPlan::none().with_link_flap(flap);
        let mut st = FaultState::new(plan);
        let nominal = SimTime::from_us(10);
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::from_us(12), nominal);
        assert!(v.faulted, "attempt inside the down window fails");
        assert_eq!(v.duration, SimTime::from_us(5), "fail_fraction 0.5");
        assert_eq!(st.stats.flap_faults, 1);
        assert_eq!(
            st.stats.h2d_attempts, 0,
            "flap failures advance no lane ordinal"
        );
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::from_us(16), nominal);
        assert!(!v.faulted, "retry after the window closes succeeds");
        assert_eq!(st.stats.h2d_attempts, 1);
        // Another device's transfers never see the flap.
        let v = st.transfer_enqueue(Lane::H2d, 1, 1, SimTime::from_us(12), nominal);
        assert!(!v.faulted);
    }

    #[test]
    fn ecc_accumulation_degrades_then_kills() {
        let plan = FaultPlan::none().with_seed(11).with_ecc(EccFault {
            device: 0,
            error_rate: 1.0,
            degrade_after: 2,
            degrade_factor: 2.0,
            kill_after: Some(4),
        });
        let mut st = FaultState::new(plan);
        let nominal = SimTime::from_us(10);
        // Errors 1 and 2 accumulate silently; transfer 2 crosses the
        // degrade threshold and runs stretched.
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(!v.faulted);
        assert_eq!(v.duration, nominal, "one error: not yet degraded");
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(!v.faulted);
        assert_eq!(v.duration, SimTime::from_us(20), "degraded past 2 errors");
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(!v.faulted, "three errors: degraded but alive");
        let v = st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, nominal);
        assert!(v.faulted, "fourth error retires the device");
        assert!(st.device_lost(0));
        assert_eq!(st.stats.ecc_errors, 4);
        assert_eq!(st.stats.ecc_degraded, 2);
        assert_eq!(st.stats.device_deaths, 1, "an ECC kill is a device death");
    }

    #[test]
    fn ecc_draws_are_seeded_and_deterministic() {
        let errors_with_seed = |seed: u64| -> u64 {
            let plan = FaultPlan::none().with_seed(seed).with_ecc(EccFault {
                device: 0,
                error_rate: 0.3,
                degrade_after: 1000,
                degrade_factor: 2.0,
                kill_after: None,
            });
            let mut st = FaultState::new(plan);
            for _ in 0..64 {
                st.transfer_enqueue(Lane::H2d, 0, 0, SimTime::ZERO, SimTime::from_us(10));
            }
            st.stats.ecc_errors
        };
        assert_eq!(errors_with_seed(5), errors_with_seed(5));
        assert!(errors_with_seed(5) > 0, "rate 0.3 over 64 draws errors");
        assert!(errors_with_seed(5) < 64, "rate 0.3 over 64 draws passes");
        assert_ne!(errors_with_seed(5), errors_with_seed(777));
    }
}
