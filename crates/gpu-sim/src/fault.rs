//! Deterministic fault injection for the simulated platform.
//!
//! A [`FaultPlan`] describes — from a single seed — which transfer attempts
//! fail, which device allocations are refused, when streams stall, and when
//! the interconnect degrades. Every decision is a pure function of the plan
//! and a per-lane attempt ordinal, so a faulty run is exactly as
//! reproducible as a fault-free one: same plan, same program, same schedule.
//!
//! The plan is carried by [`crate::MachineConfig`] (so experiment configs
//! serialize it alongside the cost model) and evaluated by
//! [`crate::GpuSystem`] at enqueue time:
//!
//! * a **transient** transfer fault makes one attempt occupy its DMA engine
//!   for a fraction of the nominal time, move no data, and be reported
//!   through [`crate::GpuSystem::op_faulted`] — the caller retries;
//! * a **persistent** fault (`fail_after`) makes every later attempt on that
//!   lane fail — callers must degrade (the TiDA-acc runtime falls back to
//!   the host path, salvaging dirty regions through the fault-exempt
//!   [`crate::GpuSystem::memcpy_d2h_salvage`]);
//! * an **allocation** fault makes the n-th `malloc_device` return
//!   `OutOfDeviceMemory` (a `cudaMalloc` failure mid-run);
//! * a **stall** occupies a stream's DMA engine before a transfer starts
//!   (driver hiccup, ECC scrub);
//! * a **degrade window** multiplies the duration of transfers enqueued
//!   while the window is open (link retraining, neighbour traffic).
//!
//! `FaultPlan::none()` disables everything; the simulator's fast paths are
//! bit-identical with the layer present but disabled.

use desim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform `f64` in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Transfer lanes a fault decision can apply to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lane {
    H2d,
    D2h,
}

impl Lane {
    fn tag(self) -> u64 {
        match self {
            Lane::H2d => 0x4832_4400,
            Lane::D2h => 0x4432_4800,
        }
    }
}

/// Fault settings for one transfer direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFaults {
    /// Probability in `[0, 1]` that any single attempt fails transiently.
    pub transient_rate: f64,
    /// Attempts with ordinal `>= fail_after` fail persistently (dead link).
    pub fail_after: Option<u64>,
    /// Fraction of the nominal transfer time a failed attempt occupies the
    /// engine before the error surfaces.
    pub fail_fraction: f64,
}

impl Default for TransferFaults {
    fn default() -> Self {
        TransferFaults {
            transient_rate: 0.0,
            fail_after: None,
            fail_fraction: 0.5,
        }
    }
}

impl TransferFaults {
    pub fn enabled(&self) -> bool {
        self.transient_rate > 0.0 || self.fail_after.is_some()
    }

    /// Deterministic verdict for the attempt with this ordinal.
    fn faulty(&self, seed: u64, lane: Lane, ordinal: u64) -> bool {
        if self.fail_after.is_some_and(|n| ordinal >= n) {
            return true;
        }
        self.transient_rate > 0.0
            && unit(splitmix64(splitmix64(seed ^ lane.tag()) ^ ordinal)) < self.transient_rate
    }
}

/// A periodic stall on one stream's transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStall {
    /// Stream index (creation order) the stall applies to.
    pub stream: usize,
    /// Every `every`-th transfer enqueued on the stream stalls (1-based).
    pub every: u64,
    /// Time the stall occupies the transfer engine.
    pub stall: SimTime,
}

/// A window of reduced link bandwidth, evaluated against the host clock at
/// enqueue time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeWindow {
    pub from: SimTime,
    pub until: SimTime,
    /// Duration multiplier for transfers enqueued inside the window (`> 1`).
    pub factor: f64,
}

/// The full seeded fault schedule. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub seed: u64,
    pub h2d: TransferFaults,
    pub d2h: TransferFaults,
    /// 0-based ordinals of `malloc_device` calls that fail.
    pub alloc_fail_nth: Vec<u64>,
    pub stalls: Vec<StreamStall>,
    pub degrade: Vec<DegradeWindow>,
    /// Slowdown factor of the fault-exempt salvage D2H path.
    pub salvage_slowdown: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing; all simulator paths stay bit-identical
    /// to a build without the fault layer.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            h2d: TransferFaults::default(),
            d2h: TransferFaults::default(),
            alloc_fail_nth: Vec::new(),
            stalls: Vec::new(),
            degrade: Vec::new(),
            salvage_slowdown: 4.0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Transient faults on both transfer directions at the given rate.
    pub fn with_transient(mut self, rate: f64) -> Self {
        self.h2d.transient_rate = rate;
        self.d2h.transient_rate = rate;
        self
    }

    pub fn enabled(&self) -> bool {
        self.h2d.enabled()
            || self.d2h.enabled()
            || !self.alloc_fail_nth.is_empty()
            || !self.stalls.is_empty()
            || !self.degrade.is_empty()
    }

    /// Largest degrade factor of any window open at `now` (1.0 when none).
    fn degrade_factor(&self, now: SimTime) -> f64 {
        self.degrade
            .iter()
            .filter(|w| w.from <= now && now < w.until)
            .map(|w| w.factor)
            .fold(1.0, f64::max)
    }

    /// Stall due before the `count`-th (1-based) transfer on `stream`.
    fn stall_for(&self, stream: usize, count: u64) -> Option<SimTime> {
        self.stalls
            .iter()
            .find(|s| s.stream == stream && s.every > 0 && count.is_multiple_of(s.every))
            .map(|s| s.stall)
    }
}

/// Counters accumulated by the fault layer over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transfer attempts per lane (counted only while a plan is active).
    pub h2d_attempts: u64,
    pub d2h_attempts: u64,
    /// Faulted attempts per lane.
    pub h2d_faults: u64,
    pub d2h_faults: u64,
    /// `malloc_device` calls refused by the plan.
    pub alloc_faults: u64,
    /// Stalls injected ahead of transfers.
    pub stalls: u64,
    /// Transfers enqueued inside a degrade window.
    pub degraded: u64,
    /// Fault-exempt salvage copies issued.
    pub salvages: u64,
    /// Engine time consumed by faulted attempts and injected stalls — the
    /// raw material of the recovery time a run report accounts for.
    pub lost_time: SimTime,
}

impl FaultStats {
    /// Total injected fault events (transfer faults, refused allocations,
    /// stalls).
    pub fn events(&self) -> u64 {
        self.h2d_faults + self.d2h_faults + self.alloc_faults + self.stalls
    }
}

/// Runtime state of the fault layer inside a [`crate::GpuSystem`].
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) stats: FaultStats,
    /// `malloc_device` ordinal counter.
    allocs: u64,
    /// Per-stream transfer enqueue counters (for stalls).
    stream_xfers: HashMap<usize, u64>,
    /// Ops that represent failed attempts.
    faulted: HashSet<desim::OpId>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            stats: FaultStats::default(),
            allocs: 0,
            stream_xfers: HashMap::new(),
            faulted: HashSet::new(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.plan.enabled()
    }

    /// Whether the next `malloc_device` call is refused by the plan.
    pub(crate) fn alloc_refused(&mut self) -> bool {
        if !self.enabled() {
            return false;
        }
        let n = self.allocs;
        self.allocs += 1;
        if self.plan.alloc_fail_nth.contains(&n) {
            self.stats.alloc_faults += 1;
            true
        } else {
            false
        }
    }

    /// Fault verdict and adjusted duration for one transfer attempt.
    /// Returns `(duration, faulted, stall)`; the caller submits the stall op
    /// (if any) ahead of the transfer.
    pub(crate) fn transfer_enqueue(
        &mut self,
        lane: Lane,
        stream: usize,
        now: SimTime,
        nominal: SimTime,
    ) -> (SimTime, bool, Option<SimTime>) {
        if !self.enabled() {
            return (nominal, false, None);
        }
        let mut duration = nominal;
        let factor = self.plan.degrade_factor(now);
        if factor > 1.0 {
            duration = SimTime::from_ns((duration.as_ns() as f64 * factor).round() as u64);
            self.stats.degraded += 1;
        }
        let count = {
            let c = self.stream_xfers.entry(stream).or_insert(0);
            *c += 1;
            *c
        };
        let stall = self.plan.stall_for(stream, count);
        if let Some(s) = stall {
            self.stats.stalls += 1;
            self.stats.lost_time += s;
        }
        let (faults, ordinal) = match lane {
            Lane::H2d => {
                self.stats.h2d_attempts += 1;
                (&self.plan.h2d, self.stats.h2d_attempts - 1)
            }
            Lane::D2h => {
                self.stats.d2h_attempts += 1;
                (&self.plan.d2h, self.stats.d2h_attempts - 1)
            }
        };
        let faulted = faults.faulty(self.plan.seed, lane, ordinal);
        if faulted {
            let frac = faults.fail_fraction.clamp(0.0, 1.0);
            duration = SimTime::from_ns((duration.as_ns() as f64 * frac).round() as u64);
            match lane {
                Lane::H2d => self.stats.h2d_faults += 1,
                Lane::D2h => self.stats.d2h_faults += 1,
            }
            self.stats.lost_time += duration;
        }
        (duration, faulted, stall)
    }

    pub(crate) fn mark_faulted(&mut self, op: desim::OpId) {
        self.faulted.insert(op);
    }

    pub(crate) fn is_faulted(&self, op: desim::OpId) -> bool {
        self.faulted.contains(&op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_disabled_and_neutral() {
        let mut st = FaultState::new(FaultPlan::none());
        assert!(!st.enabled());
        assert!(!st.alloc_refused());
        let (d, faulted, stall) =
            st.transfer_enqueue(Lane::H2d, 0, SimTime::ZERO, SimTime::from_us(10));
        assert_eq!(d, SimTime::from_us(10));
        assert!(!faulted);
        assert!(stall.is_none());
        assert_eq!(
            st.stats,
            FaultStats::default(),
            "disabled plan counts nothing"
        );
    }

    #[test]
    fn transient_decisions_are_deterministic_and_seeded() {
        let plan = FaultPlan::none().with_seed(7).with_transient(0.3);
        let verdicts: Vec<bool> = (0..64).map(|i| plan.h2d.faulty(7, Lane::H2d, i)).collect();
        let again: Vec<bool> = (0..64).map(|i| plan.h2d.faulty(7, Lane::H2d, i)).collect();
        assert_eq!(verdicts, again, "same seed, same verdicts");
        assert!(
            verdicts.iter().any(|&v| v),
            "rate 0.3 over 64 attempts faults"
        );
        assert!(
            verdicts.iter().any(|&v| !v),
            "rate 0.3 over 64 attempts passes"
        );
        let other: Vec<bool> = (0..64).map(|i| plan.h2d.faulty(8, Lane::H2d, i)).collect();
        assert_ne!(verdicts, other, "different seed, different schedule");
    }

    #[test]
    fn persistent_fails_every_attempt_past_threshold() {
        let tf = TransferFaults {
            fail_after: Some(3),
            ..TransferFaults::default()
        };
        assert!(!tf.faulty(0, Lane::D2h, 2));
        assert!(tf.faulty(0, Lane::D2h, 3));
        assert!(tf.faulty(0, Lane::D2h, 1000));
    }

    #[test]
    fn degrade_window_and_stall_apply() {
        let mut plan = FaultPlan::none();
        plan.degrade.push(DegradeWindow {
            from: SimTime::from_us(10),
            until: SimTime::from_us(20),
            factor: 3.0,
        });
        plan.stalls.push(StreamStall {
            stream: 1,
            every: 2,
            stall: SimTime::from_us(5),
        });
        let mut st = FaultState::new(plan);
        // Outside the window, stream 1, first transfer: nothing.
        let (d, _, stall) = st.transfer_enqueue(Lane::H2d, 1, SimTime::ZERO, SimTime::from_us(4));
        assert_eq!(d, SimTime::from_us(4));
        assert!(stall.is_none());
        // Inside the window, second transfer on stream 1: degraded + stalled.
        let (d, _, stall) =
            st.transfer_enqueue(Lane::H2d, 1, SimTime::from_us(15), SimTime::from_us(4));
        assert_eq!(d, SimTime::from_us(12));
        assert_eq!(stall, Some(SimTime::from_us(5)));
        assert_eq!(st.stats.degraded, 1);
        assert_eq!(st.stats.stalls, 1);
    }

    #[test]
    fn alloc_refusal_targets_exact_ordinals() {
        let mut plan = FaultPlan::none();
        plan.alloc_fail_nth = vec![1, 3];
        let mut st = FaultState::new(plan);
        let refusals: Vec<bool> = (0..5).map(|_| st.alloc_refused()).collect();
        assert_eq!(refusals, vec![false, true, false, true, false]);
        assert_eq!(st.stats.alloc_faults, 2);
    }
}
