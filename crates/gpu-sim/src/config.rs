//! Machine description and cost model.
//!
//! [`MachineConfig`] captures every throughput and latency constant the
//! simulator charges for. The default, [`MachineConfig::k40m`], is calibrated
//! to the paper's testbed — an Intel Xeon E5-2695 v2 host driving an NVIDIA
//! Tesla K40m over PCIe Gen3 — using publicly documented figures (achievable
//! pinned PCIe bandwidth ~10.5 GB/s, ~180 GB/s effective GDDR5 bandwidth,
//! ~1.2 TF/s effective double-precision throughput, microsecond-scale launch
//! and copy latencies). Absolute times are the model's, not the authors'
//! testbed's; what the model is built to preserve is the *shape* of the
//! paper's results: which variant wins, where transfer cost crosses over
//! compute cost, and how much overlap buys.

use crate::fault::FaultPlan;
use desim::SimTime;
use serde::{Deserialize, Serialize};

/// Host memory flavours, matching `malloc` / `cudaMallocHost` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostMemKind {
    /// Ordinary pageable allocation. Transfers stage through an internal
    /// pinned buffer and are effectively synchronous, exactly like CUDA's
    /// behaviour for `cudaMemcpyAsync` on pageable memory.
    Pageable,
    /// Page-locked allocation (`cudaMallocHost`): full-bandwidth DMA,
    /// genuinely asynchronous, required for transfer/compute overlap.
    Pinned,
}

/// All throughput/latency constants of the simulated platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable platform name (appears in reports).
    pub name: String,
    /// Device memory capacity in bytes (`cudaMemGetInfo` total).
    pub device_mem_bytes: u64,
    /// Pinned host→device bandwidth over the interconnect, bytes/s.
    pub h2d_pinned_bw: f64,
    /// Pinned device→host bandwidth over the interconnect, bytes/s.
    pub d2h_pinned_bw: f64,
    /// Host-side staging memcpy bandwidth (pageable→pinned bounce), bytes/s.
    pub host_stage_bw: f64,
    /// Bulk migration bandwidth for managed (unified) memory, bytes/s.
    pub managed_bw: f64,
    /// Fixed overhead per managed-memory migration (page-fault handling).
    pub managed_fault_overhead: SimTime,
    /// Fixed latency per DMA transfer (descriptor setup, PCIe round trip).
    pub copy_latency: SimTime,
    /// Fixed device-side overhead per kernel launch.
    pub kernel_launch_overhead: SimTime,
    /// Host CPU time consumed by issuing one asynchronous operation
    /// (driver call cost).
    pub host_enqueue_overhead: SimTime,
    /// Effective device memory bandwidth for memory-bound kernels, bytes/s.
    pub device_mem_bw: f64,
    /// Effective double-precision throughput for compute-bound kernels,
    /// FLOP/s.
    pub device_flops: f64,
    /// Host memcpy bandwidth for host-side ghost-cell copies, bytes/s.
    pub host_copy_bw: f64,
    /// Host scalar throughput for index arithmetic, ops/s.
    pub host_index_rate: f64,
    /// Host double-precision throughput for CPU-path kernels, FLOP/s.
    pub host_flops: f64,
    /// Host memory bandwidth for CPU-path memory-bound kernels, bytes/s.
    pub host_mem_bw: f64,
    /// Device→device peer-link bandwidth, bytes/s (PCIe switch or NVLink).
    pub p2p_bw: f64,
    /// Number of DMA engines per direction (the K40m has one per direction,
    /// allowing concurrent H2D and D2H).
    pub copy_engines_per_direction: usize,
    /// Number of kernels the compute engine can run concurrently. Large
    /// grid-sized kernels saturate the device, so the default is 1.
    pub concurrent_kernels: usize,
    /// Deterministic fault-injection plan. Defaults to [`FaultPlan::none`],
    /// which is guaranteed to leave every simulated run bit-identical to a
    /// build without the fault layer.
    pub faults: FaultPlan,
}

impl MachineConfig {
    /// The paper's platform: Xeon E5-2695 v2 + Tesla K40m over PCIe Gen3.
    pub fn k40m() -> Self {
        MachineConfig {
            name: "Tesla K40m / PCIe Gen3".to_string(),
            device_mem_bytes: 12 * (1 << 30),
            h2d_pinned_bw: 10.5e9,
            d2h_pinned_bw: 11.0e9,
            host_stage_bw: 9.5e9,
            managed_bw: 3.5e9,
            managed_fault_overhead: SimTime::from_us(30),
            copy_latency: SimTime::from_us(8),
            kernel_launch_overhead: SimTime::from_us(7),
            host_enqueue_overhead: SimTime::from_us(1),
            device_mem_bw: 180.0e9,
            device_flops: 1.2e12,
            host_copy_bw: 8.0e9,
            host_index_rate: 4.0e9,
            host_flops: 40.0e9,
            host_mem_bw: 40.0e9,
            p2p_bw: 10.0e9,
            copy_engines_per_direction: 1,
            concurrent_kernels: 1,
            faults: FaultPlan::none(),
        }
    }

    /// A Pascal-generation platform with NVLink (the paper's §I motivation:
    /// "NVLink ... allows at least 5 times faster transfer speed than the
    /// current PCIe Gen3"). Used by the what-if experiment that asks how
    /// the Fig. 5 crossover moves when the interconnect gets 5x faster
    /// while compute also grows.
    pub fn p100_nvlink() -> Self {
        MachineConfig {
            name: "Tesla P100 / NVLink".to_string(),
            device_mem_bytes: 16 * (1 << 30),
            h2d_pinned_bw: 34.0e9,
            d2h_pinned_bw: 34.0e9,
            host_stage_bw: 12.0e9,
            managed_bw: 12.0e9,
            managed_fault_overhead: SimTime::from_us(15),
            copy_latency: SimTime::from_us(6),
            kernel_launch_overhead: SimTime::from_us(6),
            host_enqueue_overhead: SimTime::from_us(1),
            device_mem_bw: 550.0e9,
            device_flops: 4.7e12,
            host_copy_bw: 10.0e9,
            host_index_rate: 4.0e9,
            host_flops: 50.0e9,
            host_mem_bw: 50.0e9,
            p2p_bw: 40.0e9,
            copy_engines_per_direction: 1,
            concurrent_kernels: 1,
            faults: FaultPlan::none(),
        }
    }

    /// Same platform with the device memory capacity overridden — used for
    /// the paper's limited-memory experiments (Fig. 7/8).
    pub fn with_device_mem(mut self, bytes: u64) -> Self {
        self.device_mem_bytes = bytes;
        self
    }

    /// Same platform with a fault-injection plan attached.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Duration of a pinned or staged DMA of `bytes` in the H2D direction
    /// (excluding pageable staging, which is charged separately on the host).
    pub fn h2d_time(&self, bytes: u64) -> SimTime {
        self.copy_latency + SimTime::from_secs_f64(bytes as f64 / self.h2d_pinned_bw)
    }

    /// Duration of a DMA of `bytes` in the D2H direction.
    pub fn d2h_time(&self, bytes: u64) -> SimTime {
        self.copy_latency + SimTime::from_secs_f64(bytes as f64 / self.d2h_pinned_bw)
    }

    /// Host-side staging time for a pageable transfer of `bytes`.
    pub fn stage_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.host_stage_bw)
    }

    /// Bulk managed-memory migration time for `bytes`.
    pub fn managed_migration_time(&self, bytes: u64) -> SimTime {
        self.managed_fault_overhead + SimTime::from_secs_f64(bytes as f64 / self.managed_bw)
    }

    /// Host-side memcpy time for `bytes` (ghost-cell copies on the host).
    pub fn host_copy_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.host_copy_bw)
    }

    /// Host time to compute `n` ghost-cell index pairs (§IV-B-6: the CPU
    /// calculates source/destination indices while the GPU updates other
    /// ghost sets).
    pub fn host_index_time(&self, n: u64) -> SimTime {
        SimTime::from_secs_f64(n as f64 / self.host_index_rate)
    }
}

/// Cost declaration for one kernel launch.
///
/// Durations follow a simple roofline: a kernel takes
/// `launch_overhead + max(bytes / device_mem_bw, flops / device_flops) /
/// efficiency`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelCost {
    /// Memory-bound kernel touching this many bytes of device memory.
    Bytes(u64),
    /// Compute-bound kernel executing this many floating-point operations.
    Flops(f64),
    /// Roofline of both.
    Roofline { bytes: u64, flops: f64 },
    /// Fixed duration (testing, microbenchmarks).
    Fixed(SimTime),
    /// One *fused* launch covering `k` stencil applications with on-chip
    /// double buffering (temporal blocking). `bytes` is the DRAM traffic of
    /// the whole launch — roughly one streaming read of the halo'd input
    /// block plus one write of the result, because the `k-1` intermediate
    /// trapezoid levels ping-pong between on-chip buffers — and `flops` is
    /// the total floating-point work of all `k` applications. The duration
    /// formula is the same roofline as [`KernelCost::Roofline`]; the fusion
    /// win is structural: one launch overhead instead of `k`, and `bytes`
    /// that do not scale with `k`.
    Fused { k: u32, bytes: u64, flops: f64 },
}

impl KernelCost {
    /// Kernel duration on `cfg` at the given efficiency (1.0 = tuned;
    /// the paper's untuned OpenACC geometry is modelled as < 1.0).
    pub fn duration(&self, cfg: &MachineConfig, efficiency: f64) -> SimTime {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "kernel efficiency must be in (0, 1], got {efficiency}"
        );
        let body = match *self {
            KernelCost::Bytes(b) => b as f64 / cfg.device_mem_bw,
            KernelCost::Flops(f) => f / cfg.device_flops,
            KernelCost::Roofline { bytes, flops } => {
                (bytes as f64 / cfg.device_mem_bw).max(flops / cfg.device_flops)
            }
            KernelCost::Fixed(t) => return cfg.kernel_launch_overhead + t,
            KernelCost::Fused { k, bytes, flops } => {
                assert!(k >= 1, "fused kernel depth must be at least 1");
                (bytes as f64 / cfg.device_mem_bw).max(flops / cfg.device_flops)
            }
        };
        cfg.kernel_launch_overhead + SimTime::from_secs_f64(body / efficiency)
    }

    /// Duration of the same work executed on the host CPU (the TiDA-acc
    /// CPU path: same source, no offload).
    pub fn duration_on_host(&self, cfg: &MachineConfig) -> SimTime {
        let body = match *self {
            KernelCost::Bytes(b) => b as f64 / cfg.host_mem_bw,
            KernelCost::Flops(f) => f / cfg.host_flops,
            KernelCost::Roofline { bytes, flops } => {
                (bytes as f64 / cfg.host_mem_bw).max(flops / cfg.host_flops)
            }
            KernelCost::Fixed(t) => return t,
            // The host has no launch overhead to amortize and no explicit
            // on-chip staging; its caches already capture the inter-step
            // reuse, so the same roofline applies.
            KernelCost::Fused { k, bytes, flops } => {
                assert!(k >= 1, "fused kernel depth must be at least 1");
                (bytes as f64 / cfg.host_mem_bw).max(flops / cfg.host_flops)
            }
        };
        SimTime::from_secs_f64(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40m_sanity() {
        let cfg = MachineConfig::k40m();
        assert_eq!(cfg.device_mem_bytes, 12 * (1 << 30));
        assert!(cfg.h2d_pinned_bw > 1e9);
        assert!(cfg.device_mem_bw > cfg.h2d_pinned_bw);
    }

    #[test]
    fn with_device_mem_overrides_capacity() {
        let cfg = MachineConfig::k40m().with_device_mem(1 << 20);
        assert_eq!(cfg.device_mem_bytes, 1 << 20);
    }

    #[test]
    fn transfer_times_scale_with_bytes() {
        let cfg = MachineConfig::k40m();
        let one = cfg.h2d_time(100 << 20);
        let two = cfg.h2d_time(200 << 20);
        // Doubling payload less than doubles total (fixed latency), but the
        // payload part doubles.
        assert!(two > one);
        let payload1 = one - cfg.copy_latency;
        let payload2 = two - cfg.copy_latency;
        let ratio = payload2.as_ns() as f64 / payload1.as_ns() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn pageable_staging_slower_than_pinned_dma() {
        let cfg = MachineConfig::k40m();
        let bytes = 1u64 << 30;
        // Staged (host stage + DMA) must exceed the bare pinned DMA.
        let staged = cfg.stage_time(bytes) + cfg.h2d_time(bytes);
        assert!(staged > cfg.h2d_time(bytes));
    }

    #[test]
    fn managed_slower_than_pinned() {
        let cfg = MachineConfig::k40m();
        let bytes = 256u64 << 20;
        assert!(cfg.managed_migration_time(bytes) > cfg.h2d_time(bytes));
    }

    #[test]
    fn kernel_cost_roofline_takes_max() {
        let cfg = MachineConfig::k40m();
        let mem = KernelCost::Bytes(1 << 30).duration(&cfg, 1.0);
        let fl = KernelCost::Flops(1e12).duration(&cfg, 1.0);
        let roof_mem = KernelCost::Roofline {
            bytes: 1 << 30,
            flops: 1.0,
        }
        .duration(&cfg, 1.0);
        let roof_fl = KernelCost::Roofline {
            bytes: 1,
            flops: 1e12,
        }
        .duration(&cfg, 1.0);
        assert_eq!(roof_mem, mem);
        assert_eq!(roof_fl, fl);
    }

    #[test]
    fn lower_efficiency_means_longer_kernel() {
        let cfg = MachineConfig::k40m();
        let tuned = KernelCost::Bytes(1 << 30).duration(&cfg, 1.0);
        let untuned = KernelCost::Bytes(1 << 30).duration(&cfg, 0.85);
        assert!(untuned > tuned);
    }

    #[test]
    fn fixed_cost_ignores_efficiency_body() {
        let cfg = MachineConfig::k40m();
        let t = KernelCost::Fixed(SimTime::from_us(100)).duration(&cfg, 0.5);
        assert_eq!(t, cfg.kernel_launch_overhead + SimTime::from_us(100));
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_panics() {
        KernelCost::Bytes(1).duration(&MachineConfig::k40m(), 0.0);
    }

    #[test]
    fn host_duration_slower_than_device_for_big_kernels() {
        let cfg = MachineConfig::k40m();
        let cost = KernelCost::Roofline {
            bytes: 1 << 30,
            flops: 1e11,
        };
        assert!(cost.duration_on_host(&cfg) > cost.duration(&cfg, 1.0));
        assert_eq!(
            KernelCost::Fixed(SimTime::from_us(5)).duration_on_host(&cfg),
            SimTime::from_us(5)
        );
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = MachineConfig::k40m();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, cfg.name);
        assert_eq!(back.device_mem_bytes, cfg.device_mem_bytes);
        assert_eq!(back.h2d_pinned_bw, cfg.h2d_pinned_bw);
        assert_eq!(back.copy_latency, cfg.copy_latency);
        let kc = KernelCost::Roofline {
            bytes: 7,
            flops: 3.5,
        };
        let kj = serde_json::to_string(&kc).unwrap();
        assert_eq!(serde_json::from_str::<KernelCost>(&kj).unwrap(), kc);
    }

    #[test]
    fn fused_cost_matches_roofline_at_same_totals() {
        // Fused is the same roofline over its totals: with identical
        // bytes/flops the durations are bit-identical, so a depth-1 fused
        // launch with an unfused application's totals degenerates exactly.
        let cfg = MachineConfig::k40m();
        let roof = KernelCost::Roofline {
            bytes: 1 << 24,
            flops: 3.0e9,
        };
        let fused = KernelCost::Fused {
            k: 1,
            bytes: 1 << 24,
            flops: 3.0e9,
        };
        assert_eq!(fused.duration(&cfg, 0.95), roof.duration(&cfg, 0.95));
        assert_eq!(fused.duration_on_host(&cfg), roof.duration_on_host(&cfg));
    }

    #[test]
    fn fused_launch_beats_k_separate_launches() {
        // The structural win: one launch covering k applications with
        // on-chip reuse is cheaper than k launches each paying overhead
        // and full DRAM traffic.
        let cfg = MachineConfig::k40m();
        let cells = 1u64 << 20;
        let one = KernelCost::Roofline {
            bytes: cells * 24,
            flops: cells as f64 * 9.0,
        };
        let k = 4u32;
        let fused = KernelCost::Fused {
            k,
            bytes: cells * 24 + cells * 8,
            flops: cells as f64 * 9.0 * k as f64,
        };
        let unfused_total = SimTime::from_ns(one.duration(&cfg, 0.95).as_ns() * k as u64);
        assert!(fused.duration(&cfg, 0.95) < unfused_total);
    }

    #[test]
    fn fused_serde_roundtrip() {
        let kc = KernelCost::Fused {
            k: 4,
            bytes: 1024,
            flops: 2.5e6,
        };
        let kj = serde_json::to_string(&kc).unwrap();
        assert_eq!(serde_json::from_str::<KernelCost>(&kj).unwrap(), kc);
    }

    #[test]
    fn index_and_host_copy_costs_positive() {
        let cfg = MachineConfig::k40m();
        assert!(cfg.host_index_time(1000) > SimTime::ZERO);
        assert!(cfg.host_copy_time(4096) > SimTime::ZERO);
    }
}
