//! `gpu-sim` — a deterministic simulator of a host + GPU platform.
//!
//! The paper evaluates TiDA-acc on a Xeon host driving a Tesla K40m over
//! PCIe Gen3 with CUDA streams. This machine has no GPU, so per the
//! reproduction's substitution policy (see `DESIGN.md` §2) the platform is
//! replaced with a discrete-event model exposing the same API surface and,
//! crucially, the same *concurrency semantics*: in-order streams, one DMA
//! engine per direction, pageable-vs-pinned-vs-managed host memory, and
//! microsecond-scale launch/copy latencies.
//!
//! Buffers can be *backed* (kernels and copies move real `f64` data — used
//! by the correctness tests) or *virtual* (timing only — used to run the
//! paper's 512³ workloads cheaply). The schedule is identical either way.

mod analysis;
mod config;
mod fault;
mod hazard;
mod kernel;
mod memory;
mod system;

pub use analysis::{HealthCounters, PrefetchCounters, RecoveryCounters, RunReport};
pub use config::{HostMemKind, KernelCost, MachineConfig};
pub use fault::{
    CorruptionFault, CrashFault, DegradeWindow, DeviceDeath, EccFault, FaultPlan, FaultStats,
    LinkFault, LinkFlap, LivelockFault, StreamStall, TransferFaults,
};
pub use hazard::{HazardCounters, HazardKind, HazardRecord};
pub use kernel::KernelLaunch;
pub use memory::{DeviceAllocator, IntegrityStats, OutOfDeviceMemory};
pub use system::{
    BufKey, DeviceBuffer, Event, GpuSystem, Hazard, HostBuffer, ManagedBuffer, StreamId,
};

pub use desim::{Bound, CriticalStep, OpId, SimTime, Sym, Trace, TraceLevel};

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> GpuSystem {
        GpuSystem::new(MachineConfig::k40m())
    }

    const MB64: usize = (64 << 20) / 8; // 64 MiB of doubles

    #[test]
    fn pinned_h2d_roundtrip_moves_data() {
        let mut g = sys();
        let h = g.malloc_host(16, HostMemKind::Pinned);
        let d = g.malloc_device(16).unwrap();
        let h2 = g.malloc_host(16, HostMemKind::Pinned);
        g.host_slab(h).fill_with(|i| i as f64);
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, 16, s);
        g.memcpy_d2h_async(h2, 0, d, 0, 16, s);
        g.stream_synchronize(s);
        assert_eq!(
            g.host_slab(h2).snapshot().unwrap(),
            (0..16).map(|i| i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_order_is_fifo() {
        let mut g = sys();
        g.set_tracing(true);
        let h = g.malloc_host(MB64, HostMemKind::Pinned);
        let d = g.malloc_device(MB64).unwrap();
        let s = g.create_stream();
        let c1 = g.memcpy_h2d_async(d, 0, h, 0, MB64, s);
        let k = g.launch_kernel(
            s,
            KernelLaunch::new("k", KernelCost::Bytes(64 << 20)).reads(BufKey::Device(0)),
        );
        let c2 = g.memcpy_d2h_async(h, 0, d, 0, MB64, s);
        g.finish();
        let t1 = g.trace();
        let _ = (c1, k, c2);
        // h2d ends before kernel starts; kernel ends before d2h starts.
        let spans = t1.spans;
        let h2d = spans.iter().find(|s| s.category == "h2d").unwrap();
        let ker = spans.iter().find(|s| s.category == "kernel").unwrap();
        let d2h = spans.iter().find(|s| s.category == "d2h").unwrap();
        assert!(h2d.end <= ker.start);
        assert!(ker.end <= d2h.start);
    }

    #[test]
    fn two_streams_overlap_copy_and_compute() {
        let mut g = sys();
        g.set_tracing(true);
        let h = g.malloc_host(2 * MB64, HostMemKind::Pinned);
        let d0 = g.malloc_device(MB64).unwrap();
        let d1 = g.malloc_device(MB64).unwrap();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        g.memcpy_h2d_async(d0, 0, h, 0, MB64, s0);
        g.launch_kernel(s0, KernelLaunch::new("k0", KernelCost::Bytes(256 << 20)));
        g.memcpy_h2d_async(d1, 0, h, MB64, MB64, s1);
        g.launch_kernel(s1, KernelLaunch::new("k1", KernelCost::Bytes(256 << 20)));
        g.finish();
        let tr = g.trace();
        // The H2D engine (0) and compute engine (2) must overlap: stream 1's
        // copy proceeds while stream 0's kernel runs.
        assert!(tr.overlap_time(0, 2) > SimTime::ZERO);
    }

    #[test]
    fn pinned_async_does_not_block_host_but_pageable_does() {
        let cfg = MachineConfig::k40m();
        let mut g = GpuSystem::new(cfg.clone());
        let hp = g.malloc_host(MB64, HostMemKind::Pinned);
        let d = g.malloc_device(MB64).unwrap();
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, hp, 0, MB64, s);
        // Pinned async: only enqueue overhead on the host clock.
        assert_eq!(g.host_now(), cfg.host_enqueue_overhead);

        let mut g2 = GpuSystem::new(cfg.clone());
        let hq = g2.malloc_host(MB64, HostMemKind::Pageable);
        let d2 = g2.malloc_device(MB64).unwrap();
        let s2 = g2.create_stream();
        g2.memcpy_h2d_async(d2, 0, hq, 0, MB64, s2);
        // Pageable async degenerates to synchronous: staging + DMA on the
        // host clock.
        assert!(g2.host_now() >= cfg.stage_time(64 << 20) + cfg.h2d_time(64 << 20));
    }

    #[test]
    fn pageable_transfer_slower_than_pinned() {
        let run = |kind: HostMemKind| {
            let mut g = sys();
            let h = g.malloc_host(MB64, kind);
            let d = g.malloc_device(MB64).unwrap();
            let s = g.create_stream();
            g.memcpy_h2d(d, 0, h, 0, MB64, s);
            g.memcpy_d2h(h, 0, d, 0, MB64, s);
            g.finish()
        };
        assert!(run(HostMemKind::Pageable) > run(HostMemKind::Pinned));
    }

    #[test]
    fn managed_migrates_on_kernel_launch_and_host_access() {
        let mut g = sys();
        let m = g.malloc_managed(MB64).unwrap();
        assert!(!g.managed_on_device(m));
        let s = g.create_stream();
        g.launch_kernel(
            s,
            KernelLaunch::new("k", KernelCost::Bytes(1 << 20)).writes(BufKey::Managed(0)),
        );
        assert!(g.managed_on_device(m));
        let before = g.finish();
        g.managed_host_access(m);
        assert!(!g.managed_on_device(m));
        assert!(g.host_now() > before, "migration back costs time");
        // Second kernel launch must migrate again.
        g.launch_kernel(
            s,
            KernelLaunch::new("k2", KernelCost::Bytes(1 << 20)).reads(BufKey::Managed(0)),
        );
        assert!(g.managed_on_device(m));
    }

    #[test]
    fn managed_slower_than_pinned_roundtrip() {
        let pinned = {
            let mut g = sys();
            let h = g.malloc_host(MB64, HostMemKind::Pinned);
            let d = g.malloc_device(MB64).unwrap();
            let s = g.create_stream();
            g.memcpy_h2d(d, 0, h, 0, MB64, s);
            g.launch_kernel(s, KernelLaunch::new("k", KernelCost::Bytes(64 << 20)));
            g.memcpy_d2h(h, 0, d, 0, MB64, s);
            g.finish()
        };
        let managed = {
            let mut g = sys();
            let m = g.malloc_managed(MB64).unwrap();
            let s = g.create_stream();
            g.launch_kernel(
                s,
                KernelLaunch::new("k", KernelCost::Bytes(64 << 20)).writes(BufKey::Managed(0)),
            );
            g.managed_host_access(m);
            g.finish()
        };
        assert!(managed > pinned);
    }

    #[test]
    fn events_order_across_streams() {
        let mut g = sys();
        g.set_tracing(true);
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        g.launch_kernel(
            s0,
            KernelLaunch::new("a", KernelCost::Fixed(SimTime::from_us(100))),
        );
        let ev = g.record_event(s0);
        g.stream_wait_event(s1, ev);
        g.launch_kernel(
            s1,
            KernelLaunch::new("b", KernelCost::Fixed(SimTime::from_us(10))),
        );
        g.finish();
        let tr = g.trace();
        let spans = tr.spans_of(2); // compute engine
        assert_eq!(spans.len(), 2);
        assert!(spans[0].label == "a" && spans[1].label == "b");
        assert!(spans[0].end <= spans[1].start);
    }

    #[test]
    fn kernel_exec_effect_runs_with_scheduled_data() {
        let mut g = sys();
        let h = g.malloc_host(4, HostMemKind::Pinned);
        let d = g.malloc_device(4).unwrap();
        g.host_slab(h).fill(2.0);
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, 4, s);
        let slab = g.device_slab(d);
        g.launch_kernel(
            s,
            KernelLaunch::new("square", KernelCost::Fixed(SimTime::from_us(1))).exec(move || {
                slab.with_mut(|data| {
                    for x in data.unwrap() {
                        *x = *x * *x;
                    }
                })
            }),
        );
        g.memcpy_d2h_async(h, 0, d, 0, 4, s);
        g.stream_synchronize(s);
        assert_eq!(g.host_slab(h).snapshot().unwrap(), vec![4.0; 4]);
    }

    #[test]
    fn device_allocator_exposed_through_mem_get_info() {
        let mut g = GpuSystem::new(MachineConfig::k40m().with_device_mem(1 << 20));
        let (free0, total) = g.mem_get_info();
        assert_eq!(free0, 1 << 20);
        assert_eq!(total, 1 << 20);
        let d = g.malloc_device(1024).unwrap(); // 8 KiB
        assert_eq!(g.mem_get_info().0, (1 << 20) - 8192);
        assert!(g.malloc_device(1 << 20).is_err());
        g.free_device(d);
        assert_eq!(g.mem_get_info().0, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_panics() {
        let mut g = sys();
        let d = g.malloc_device(8).unwrap();
        g.free_device(d);
        let _ = g.device_slab(d);
    }

    #[test]
    fn virtual_backing_same_timing_no_data() {
        let run = |backed: bool| {
            let mut g = GpuSystem::with_backing(MachineConfig::k40m(), backed);
            let h = g.malloc_host(MB64, HostMemKind::Pinned);
            let d = g.malloc_device(MB64).unwrap();
            let s = g.create_stream();
            g.memcpy_h2d_async(d, 0, h, 0, MB64, s);
            g.launch_kernel(s, KernelLaunch::new("k", KernelCost::Bytes(64 << 20)));
            g.memcpy_d2h_async(h, 0, d, 0, MB64, s);
            (g.finish(), g.host_slab(h).is_virtual())
        };
        let (t_real, v_real) = run(true);
        let (t_virt, v_virt) = run(false);
        assert_eq!(t_real, t_virt, "backing must not change the schedule");
        assert!(!v_real);
        assert!(v_virt);
    }

    #[test]
    fn hazard_checker_finds_cross_stream_race() {
        let mut g = sys();
        g.set_hazard_checking(true);
        let d = g.malloc_device(MB64).unwrap();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        // Two kernels writing the same buffer from different streams with no
        // event ordering: a race. (Needs concurrent_kernels >= 2 to overlap
        // in time; with 1 compute engine they serialize and there is no
        // overlap, which is also what real hardware would do.)
        let mut cfg = MachineConfig::k40m();
        cfg.concurrent_kernels = 2;
        let mut g2 = GpuSystem::new(cfg);
        g2.set_hazard_checking(true);
        let d2 = g2.malloc_device(MB64).unwrap();
        let t0 = g2.create_stream();
        let t1 = g2.create_stream();
        g2.launch_kernel(
            t0,
            KernelLaunch::new("w0", KernelCost::Fixed(SimTime::from_us(100)))
                .writes(BufKey::Device(d2.index())),
        );
        g2.launch_kernel(
            t1,
            KernelLaunch::new("w1", KernelCost::Fixed(SimTime::from_us(100)))
                .writes(BufKey::Device(d2.index())),
        );
        g2.finish();
        assert!(!g2.check_hazards().is_empty());

        // Properly ordered: no hazard.
        g.launch_kernel(
            s0,
            KernelLaunch::new("w0", KernelCost::Fixed(SimTime::from_us(100)))
                .writes(BufKey::Device(d.index())),
        );
        let ev = g.record_event(s0);
        g.stream_wait_event(s1, ev);
        g.launch_kernel(
            s1,
            KernelLaunch::new("w1", KernelCost::Fixed(SimTime::from_us(100)))
                .writes(BufKey::Device(d.index())),
        );
        g.finish();
        assert!(g.check_hazards().is_empty());
    }

    #[test]
    fn stats_account_transfers_and_kernels() {
        let mut g = sys();
        let h = g.malloc_host(1024, HostMemKind::Pinned);
        let d = g.malloc_device(1024).unwrap();
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, 1024, s);
        g.memcpy_d2h_async(h, 0, d, 0, 512, s);
        g.launch_kernel(s, KernelLaunch::new("k", KernelCost::Flops(1.0)));
        assert_eq!(g.stats_bytes_h2d(), 8192);
        assert_eq!(g.stats_bytes_d2h(), 4096);
        assert_eq!(g.stats_kernels(), 1);
    }

    #[test]
    fn multi_device_engines_run_in_parallel() {
        let mut g = GpuSystem::multi(MachineConfig::k40m(), 2, false);
        g.set_tracing(true);
        assert_eq!(g.num_devices(), 2);
        let s0 = g.create_stream_on(0);
        let s1 = g.create_stream_on(1);
        g.launch_kernel(
            s0,
            KernelLaunch::new("k0", KernelCost::Fixed(SimTime::from_ms(10))),
        );
        g.launch_kernel(
            s1,
            KernelLaunch::new("k1", KernelCost::Fixed(SimTime::from_ms(10))),
        );
        let elapsed = g.finish();
        // Two devices compute concurrently: total ≈ one kernel, not two.
        assert!(elapsed < SimTime::from_ms(15), "{elapsed}");
    }

    #[test]
    fn per_device_memory_is_independent() {
        let cfg = MachineConfig::k40m().with_device_mem(1 << 20);
        let mut g = GpuSystem::multi(cfg, 2, false);
        let len = (1 << 20) / 8;
        let _d0 = g.malloc_device_on(0, len).unwrap(); // fills device 0
        assert!(g.malloc_device_on(0, 8).is_err());
        // Device 1 is untouched.
        let d1 = g.malloc_device_on(1, len).unwrap();
        assert_eq!(g.device_of(d1), 1);
        assert_eq!(g.mem_get_info_on(1).0, 0);
        assert_eq!(g.mem_get_info_on(0).0, 0);
    }

    #[test]
    fn p2p_copy_moves_data_between_devices() {
        let mut g = GpuSystem::multi(MachineConfig::k40m(), 2, true);
        let h = g.malloc_host(8, HostMemKind::Pinned);
        g.host_slab(h).fill_with(|i| i as f64);
        let d0 = g.malloc_device_on(0, 8).unwrap();
        let d1 = g.malloc_device_on(1, 8).unwrap();
        let s0 = g.create_stream_on(0);
        let s1 = g.create_stream_on(1);
        g.memcpy_h2d_async(d0, 0, h, 0, 8, s0);
        // Order the peer copy after device 0's upload.
        let ev = g.record_event(s0);
        g.stream_wait_event(s1, ev);
        g.memcpy_p2p_async(d1, 0, d0, 0, 8, s1);
        let h2 = g.malloc_host(8, HostMemKind::Pinned);
        g.memcpy_d2h_async(h2, 0, d1, 0, 8, s1);
        g.stream_synchronize(s1);
        assert_eq!(
            g.host_slab(h2).snapshot().unwrap(),
            (0..8).map(|i| i as f64).collect::<Vec<_>>()
        );
        assert_eq!(g.stats_bytes_p2p(), 64);
    }

    #[test]
    fn device_death_refuses_the_dead_device_and_spares_survivors() {
        let mut cfg = MachineConfig::k40m();
        cfg.faults = FaultPlan::none().with_device_death(DeviceDeath::at_transfer(1, 2));
        let mut g = GpuSystem::multi(cfg, 2, true);
        let h = g.malloc_host(8, HostMemKind::Pinned);
        g.host_slab(h).fill_with(|i| i as f64);
        let d0 = g.malloc_device_on(0, 8).unwrap();
        let d1 = g.malloc_device_on(1, 8).unwrap();
        let s0 = g.create_stream_on(0);
        let s1 = g.create_stream_on(1);
        // Device 1's first transfer passes, the second kills it.
        let op = g.memcpy_h2d_async(d1, 0, h, 0, 8, s1);
        assert!(!g.op_faulted(op));
        let op = g.memcpy_h2d_async(d1, 0, h, 0, 8, s1);
        assert!(g.op_faulted(op), "second transfer kills device 1");
        assert!(g.device_lost(1));
        assert!(!g.crashed(), "a device death is not a platform crash");
        assert_eq!(g.lost_devices(), vec![1]);
        // Work on the dead device is refused: transfers, peer copies into
        // it, salvage from it, and allocations.
        let op = g.memcpy_d2h_async(h, 0, d1, 0, 8, s1);
        assert!(g.op_faulted(op));
        let op = g.memcpy_p2p_async(d1, 0, d0, 0, 8, s1);
        assert!(g.op_faulted(op));
        let op = g.memcpy_d2h_salvage(h, 0, d1, 0, 8, s1);
        assert!(g.op_faulted(op));
        assert!(g.malloc_device_on(1, 8).is_err());
        // Device 0 is untouched: its transfers and kernels still run.
        let op = g.memcpy_h2d_async(d0, 0, h, 0, 8, s0);
        assert!(!g.op_faulted(op));
        let k = g.launch_kernel(s0, KernelLaunch::new("k", KernelCost::Bytes(64)));
        assert!(!g.op_faulted(k));
        let h2 = g.malloc_host(8, HostMemKind::Pinned);
        let op = g.memcpy_d2h_async(h2, 0, d0, 0, 8, s0);
        g.stream_synchronize(s0);
        assert!(!g.op_faulted(op));
        assert_eq!(
            g.host_slab(h2).snapshot().unwrap(),
            (0..8).map(|i| i as f64).collect::<Vec<_>>(),
            "survivor's data path stays golden"
        );
        assert_eq!(g.fault_stats().device_deaths, 1);
    }

    #[test]
    fn device_fault_plan_serde_roundtrip_via_machine_config() {
        let mut cfg = MachineConfig::k40m();
        cfg.faults = FaultPlan::none()
            .with_device_death(DeviceDeath::at_time(1, SimTime::from_us(50)))
            .with_link_flap(LinkFlap::new(
                0,
                SimTime::from_us(10),
                SimTime::from_us(20),
                SimTime::from_us(5),
                3,
            ))
            .with_ecc(EccFault {
                device: 1,
                error_rate: 0.1,
                degrade_after: 4,
                degrade_factor: 2.0,
                kill_after: Some(16),
            });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, cfg.faults);
    }

    #[test]
    #[should_panic(expected = "different devices")]
    fn cross_device_stream_misuse_panics() {
        let mut g = GpuSystem::multi(MachineConfig::k40m(), 2, false);
        let h = g.malloc_host(8, HostMemKind::Pinned);
        let d1 = g.malloc_device_on(1, 8).unwrap();
        let s0 = g.create_stream_on(0);
        g.memcpy_h2d_async(d1, 0, h, 0, 8, s0);
    }

    #[test]
    fn d2d_copy_same_device() {
        let mut g = sys();
        let h = g.malloc_host(8, HostMemKind::Pinned);
        g.host_slab(h).fill_with(|i| (i * i) as f64);
        let d0 = g.malloc_device(8).unwrap();
        let d1 = g.malloc_device(8).unwrap();
        let s = g.create_stream();
        g.memcpy_h2d_async(d0, 0, h, 0, 8, s);
        g.memcpy_d2d_async(d1, 0, d0, 0, 8, s);
        let h2 = g.malloc_host(8, HostMemKind::Pinned);
        g.memcpy_d2h_async(h2, 0, d1, 0, 8, s);
        g.stream_synchronize(s);
        assert_eq!(
            g.host_slab(h2).snapshot().unwrap(),
            (0..8).map(|i| (i * i) as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "same-device")]
    fn d2d_across_devices_panics() {
        let mut g = GpuSystem::multi(MachineConfig::k40m(), 2, false);
        let d0 = g.malloc_device_on(0, 8).unwrap();
        let d1 = g.malloc_device_on(1, 8).unwrap();
        let s = g.create_stream_on(0);
        g.memcpy_d2d_async(d0, 0, d1, 0, 8, s);
    }

    #[test]
    fn nvlink_config_transfers_faster() {
        let k40 = MachineConfig::k40m();
        let p100 = MachineConfig::p100_nvlink();
        let bytes = 1u64 << 30;
        assert!(p100.h2d_time(bytes) < k40.h2d_time(bytes));
        // §I: "at least 5 times faster" — our constants honour that for
        // payload-dominated transfers.
        let ratio = (k40.h2d_time(bytes).as_ns() as f64) / (p100.h2d_time(bytes).as_ns() as f64);
        assert!(ratio > 3.0, "ratio {ratio}");
    }

    #[test]
    fn host_func_is_stream_ordered_and_non_blocking() {
        let mut g = sys();
        g.set_tracing(true);
        let h = g.malloc_host(4, HostMemKind::Pinned);
        let d = g.malloc_device(4).unwrap();
        g.host_slab(h).fill(1.0);
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, 4, s);
        let slab = g.device_slab(d);
        g.launch_kernel(
            s,
            KernelLaunch::new("double", KernelCost::Fixed(SimTime::from_us(50))).exec(move || {
                slab.with_mut(|v| {
                    for x in v.unwrap() {
                        *x *= 2.0;
                    }
                })
            }),
        );
        g.memcpy_d2h_async(h, 0, d, 0, 4, s);
        // Host callback runs after the D2H, sees the result, and does not
        // block the submitting thread.
        let host_slab = g.host_slab(h);
        let witness = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let w = witness.clone();
        g.launch_host_func(s, SimTime::from_us(10), "postprocess", move || {
            let v = host_slab.get(0).unwrap();
            w.store(v as u64, std::sync::atomic::Ordering::Relaxed);
        });
        let before = g.host_now();
        assert!(
            before < SimTime::from_us(30),
            "submission must not block: {before}"
        );
        g.stream_synchronize(s);
        assert_eq!(witness.load(std::sync::atomic::Ordering::Relaxed), 2);
        // Later stream work waits for the callback.
        g.launch_kernel(
            s,
            KernelLaunch::new("after", KernelCost::Fixed(SimTime::from_us(1))),
        );
        g.finish();
        let tr = g.trace();
        let hostfn = tr.spans.iter().find(|sp| sp.category == "hostfn").unwrap();
        let after = tr.spans.iter().find(|sp| sp.label == "after").unwrap();
        assert!(hostfn.end <= after.start);
        let d2h = tr.spans.iter().find(|sp| sp.category == "d2h").unwrap();
        assert!(d2h.end <= hostfn.start);
    }

    #[test]
    fn host_work_occupies_host_lane() {
        let mut g = sys();
        g.set_tracing(true);
        g.host_work(SimTime::from_us(50), "index-calc");
        assert_eq!(g.host_now(), SimTime::from_us(50));
        let tr = g.trace();
        assert_eq!(tr.spans_of(3).len(), 1); // host engine is index 3
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    #[test]
    fn disabled_fault_plan_changes_nothing() {
        let run = |cfg: MachineConfig| {
            let mut g = GpuSystem::new(cfg);
            let h = g.malloc_host(MB64, HostMemKind::Pinned);
            let d = g.malloc_device(MB64).unwrap();
            let s = g.create_stream();
            g.memcpy_h2d_async(d, 0, h, 0, MB64, s);
            g.launch_kernel(s, KernelLaunch::new("k", KernelCost::Bytes(64 << 20)));
            g.memcpy_d2h_async(h, 0, d, 0, MB64, s);
            (g.finish(), g.stats_bytes_h2d(), g.stats_bytes_d2h())
        };
        let base = run(MachineConfig::k40m());
        let with_plan = run(MachineConfig::k40m().with_faults(FaultPlan::none().with_seed(42)));
        assert_eq!(base, with_plan, "a disabled plan must be invisible");
    }

    #[test]
    fn faulted_transfer_moves_no_data_and_retry_succeeds() {
        // Persistent-from-zero H2D plan, lifted after one attempt via
        // set_fault_plan: the first attempt faults, the second moves data.
        let plan = FaultPlan {
            h2d: TransferFaults {
                fail_after: Some(0),
                ..TransferFaults::default()
            },
            ..FaultPlan::none()
        };
        let mut g = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
        let h = g.malloc_host(16, HostMemKind::Pinned);
        let d = g.malloc_device(16).unwrap();
        g.host_slab(h).fill_with(|i| i as f64);
        let s = g.create_stream();
        let op = g.memcpy_h2d_async(d, 0, h, 0, 16, s);
        g.stream_synchronize(s);
        assert!(g.op_faulted(op));
        assert_eq!(g.fault_stats().h2d_faults, 1);
        assert_eq!(g.stats_bytes_h2d(), 0, "faulted attempt moves no bytes");
        assert_eq!(g.device_slab(d).snapshot().unwrap(), vec![0.0; 16]);

        g.set_fault_plan(FaultPlan::none());
        let op2 = g.memcpy_h2d_async(d, 0, h, 0, 16, s);
        g.stream_synchronize(s);
        assert!(!g.op_faulted(op2));
        assert_eq!(
            g.device_slab(d).snapshot().unwrap(),
            (0..16).map(|i| i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn faulted_attempt_costs_engine_time_and_is_traced() {
        let plan = FaultPlan {
            h2d: TransferFaults {
                fail_after: Some(0),
                fail_fraction: 0.5,
                ..TransferFaults::default()
            },
            ..FaultPlan::none()
        };
        let mut g = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
        g.set_tracing(true);
        let h = g.malloc_host(MB64, HostMemKind::Pinned);
        let d = g.malloc_device(MB64).unwrap();
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, MB64, s);
        g.finish();
        let tr = g.trace();
        let span = tr
            .spans
            .iter()
            .find(|sp| sp.category == "h2d-fault")
            .unwrap();
        let nominal = g.config().h2d_time(64 << 20);
        let took = span.end - span.start;
        assert!(
            took > SimTime::ZERO && took < nominal,
            "{took} vs {nominal}"
        );
        assert_eq!(g.fault_stats().lost_time, took);
    }

    #[test]
    fn alloc_fault_surfaces_as_out_of_memory() {
        let plan = FaultPlan {
            alloc_fail_nth: vec![1],
            ..FaultPlan::none()
        };
        let mut g = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
        assert!(g.malloc_device(16).is_ok());
        let err = g.malloc_device(16).unwrap_err();
        assert_eq!(err.requested, 128);
        assert!(g.malloc_device(16).is_ok(), "only the 2nd alloc is refused");
        assert_eq!(g.fault_stats().alloc_faults, 1);
    }

    #[test]
    fn stall_and_degrade_window_slow_the_run() {
        let base = {
            let mut g = sys();
            let h = g.malloc_host(MB64, HostMemKind::Pinned);
            let d = g.malloc_device(MB64).unwrap();
            let s = g.create_stream();
            g.memcpy_h2d_async(d, 0, h, 0, MB64, s);
            g.finish()
        };
        let plan = FaultPlan {
            stalls: vec![StreamStall {
                stream: 0,
                every: 1,
                stall: SimTime::from_ms(1),
            }],
            degrade: vec![DegradeWindow {
                from: SimTime::ZERO,
                until: SimTime::from_secs_f64(1.0),
                factor: 2.0,
            }],
            ..FaultPlan::none()
        };
        let mut g = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
        g.set_tracing(true);
        let h = g.malloc_host(MB64, HostMemKind::Pinned);
        let d = g.malloc_device(MB64).unwrap();
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, MB64, s);
        let slowed = g.finish();
        assert!(slowed > base + SimTime::from_ms(1), "{slowed} vs {base}");
        let st = g.fault_stats();
        assert_eq!((st.stalls, st.degraded), (1, 1));
        assert!(g.trace().spans.iter().any(|sp| sp.category == "stall"));
    }

    #[test]
    fn salvage_copy_is_fault_exempt_and_slower() {
        let plan = FaultPlan {
            d2h: TransferFaults {
                fail_after: Some(0),
                ..TransferFaults::default()
            },
            ..FaultPlan::none()
        };
        let mut g = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
        g.set_tracing(true);
        let h = g.malloc_host(16, HostMemKind::Pinned);
        let d = g.malloc_device(16).unwrap();
        g.host_slab(h).fill(3.0);
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, 16, s);
        let h2 = g.malloc_host(16, HostMemKind::Pinned);
        let dead = g.memcpy_d2h_async(h2, 0, d, 0, 16, s);
        g.stream_synchronize(s);
        assert!(g.op_faulted(dead), "the plan kills the normal D2H path");
        assert_eq!(g.host_slab(h2).snapshot().unwrap(), vec![0.0; 16]);
        g.memcpy_d2h_salvage(h2, 0, d, 0, 16, s);
        g.stream_synchronize(s);
        assert_eq!(g.host_slab(h2).snapshot().unwrap(), vec![3.0; 16]);
        assert_eq!(g.fault_stats().salvages, 1);
        let tr = g.trace();
        let salvage = tr.spans.iter().find(|sp| sp.category == "salvage").unwrap();
        let healthy_d2h = g.config().d2h_time(128);
        assert!(salvage.end - salvage.start > healthy_d2h);
    }

    #[test]
    fn report_accounts_fault_recovery_time() {
        let plan = FaultPlan {
            h2d: TransferFaults {
                fail_after: Some(0),
                ..TransferFaults::default()
            },
            ..FaultPlan::none()
        };
        let mut g = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
        g.set_tracing(true);
        let h = g.malloc_host(MB64, HostMemKind::Pinned);
        let d = g.malloc_device(MB64).unwrap();
        let s = g.create_stream();
        g.memcpy_h2d_async(d, 0, h, 0, MB64, s);
        g.backoff_work(SimTime::from_us(100), "retry-backoff");
        let r = g.report();
        assert_eq!(r.fault_events, 1);
        assert!(r.fault_time > SimTime::ZERO);
        assert!(r.to_string().contains("faults: 1 events"));
        assert!(g.trace().spans.iter().any(|sp| sp.category == "backoff"));
    }

    #[test]
    fn fault_plan_serde_roundtrip_via_machine_config() {
        let plan = FaultPlan {
            seed: 99,
            h2d: TransferFaults {
                transient_rate: 0.1,
                fail_after: Some(7),
                fail_fraction: 0.25,
            },
            alloc_fail_nth: vec![2, 5],
            stalls: vec![StreamStall {
                stream: 1,
                every: 4,
                stall: SimTime::from_us(50),
            }],
            degrade: vec![DegradeWindow {
                from: SimTime::from_ms(1),
                until: SimTime::from_ms(2),
                factor: 1.5,
            }],
            ..FaultPlan::none()
        };
        let cfg = MachineConfig::k40m().with_faults(plan.clone());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, plan);
    }
}
