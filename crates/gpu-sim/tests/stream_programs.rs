//! Property tests over random stream programs: the CUDA semantics the
//! paper's overlap argument rests on must hold for *any* program, not just
//! the library's.

use gpu_sim::{
    BufKey, GpuSystem, HazardKind, HostMemKind, KernelCost, KernelLaunch, MachineConfig, SimTime,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    H2d { buf: usize, stream: usize },
    D2h { buf: usize, stream: usize },
    Kernel { buf: usize, stream: usize, us: u64 },
    EventChain { from: usize, to: usize },
    StreamSync { stream: usize },
}

fn arb_cmd(nbufs: usize, nstreams: usize) -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0..nbufs, 0..nstreams).prop_map(|(buf, stream)| Cmd::H2d { buf, stream }),
        (0..nbufs, 0..nstreams).prop_map(|(buf, stream)| Cmd::D2h { buf, stream }),
        (0..nbufs, 0..nstreams, 1u64..200).prop_map(|(buf, stream, us)| Cmd::Kernel {
            buf,
            stream,
            us
        }),
        (0..nstreams, 0..nstreams).prop_map(|(from, to)| Cmd::EventChain { from, to }),
        (0..nstreams).prop_map(|stream| Cmd::StreamSync { stream }),
    ]
}

/// Run a program; returns (elapsed, per-op (stream, start, end) list).
fn run_program(cmds: &[Cmd], backed: bool, trace: bool) -> (SimTime, GpuSystem) {
    let nbufs = 3;
    let nstreams = 3;
    let len = 1 << 12;
    let mut g = GpuSystem::with_backing(MachineConfig::k40m(), backed);
    g.set_tracing(trace);
    let host: Vec<_> = (0..nbufs)
        .map(|_| g.malloc_host(len, HostMemKind::Pinned))
        .collect();
    let dev: Vec<_> = (0..nbufs).map(|_| g.malloc_device(len).unwrap()).collect();
    let streams: Vec<_> = (0..nstreams).map(|_| g.create_stream()).collect();

    for cmd in cmds {
        match *cmd {
            Cmd::H2d { buf, stream } => {
                g.memcpy_h2d_async(dev[buf], 0, host[buf], 0, len, streams[stream]);
            }
            Cmd::D2h { buf, stream } => {
                g.memcpy_d2h_async(host[buf], 0, dev[buf], 0, len, streams[stream]);
            }
            Cmd::Kernel { buf, stream, us } => {
                let slab = g.device_slab(dev[buf]);
                g.launch_kernel(
                    streams[stream],
                    KernelLaunch::new("k", KernelCost::Fixed(SimTime::from_us(us)))
                        .writes(dev[buf].into())
                        .exec(move || slab.set(0, 1.0)),
                );
            }
            Cmd::EventChain { from, to } => {
                let ev = g.record_event(streams[from]);
                g.stream_wait_event(streams[to], ev);
            }
            Cmd::StreamSync { stream } => g.stream_synchronize(streams[stream]),
        }
    }
    let elapsed = g.finish();
    (elapsed, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The schedule never depends on whether data is real or virtual.
    #[test]
    fn prop_backing_never_changes_timing(cmds in proptest::collection::vec(arb_cmd(3, 3), 1..25)) {
        let (t_real, _) = run_program(&cmds, true, false);
        let (t_virt, _) = run_program(&cmds, false, false);
        prop_assert_eq!(t_real, t_virt);
    }

    /// Per-engine spans never overlap beyond the engine's capacity (the
    /// copy engines and compute engine are capacity-1 on the K40m model).
    #[test]
    fn prop_engines_are_exclusive(cmds in proptest::collection::vec(arb_cmd(3, 3), 1..25)) {
        let (_, g) = run_program(&cmds, false, true);
        let tr = g.trace();
        for engine in 0..3 {
            let spans = tr.spans_of(engine);
            for w in spans.windows(2) {
                prop_assert!(
                    w[0].end <= w[1].start,
                    "engine {engine}: [{},{}) overlaps [{},{})",
                    w[0].start, w[0].end, w[1].start, w[1].end
                );
            }
        }
    }

    /// Work submitted to one stream completes in submission order: after a
    /// stream_synchronize, re-submitting to the same stream can never start
    /// before everything earlier finished.
    #[test]
    fn prop_stream_fifo(kernels in proptest::collection::vec(1u64..100, 2..8)) {
        let mut g = GpuSystem::with_backing(MachineConfig::k40m(), false);
        g.set_tracing(true);
        let s = g.create_stream();
        for &us in &kernels {
            g.launch_kernel(s, KernelLaunch::new("k", KernelCost::Fixed(SimTime::from_us(us))));
        }
        g.finish();
        let tr = g.trace();
        let spans = tr.spans_of(2); // compute engine
        prop_assert_eq!(spans.len(), kernels.len());
        for w in spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "stream order violated");
        }
    }

    /// Elapsed time is monotone: appending work never makes a program
    /// finish earlier.
    #[test]
    fn prop_elapsed_monotone_in_program_prefix(cmds in proptest::collection::vec(arb_cmd(3, 3), 2..20)) {
        let (full, _) = run_program(&cmds, false, false);
        let (prefix, _) = run_program(&cmds[..cmds.len() - 1], false, false);
        prop_assert!(prefix <= full, "prefix {prefix} > full {full}");
    }

    /// Single-stream programs are race-free by construction: the hazard
    /// checker must stay quiet.
    #[test]
    fn prop_single_stream_hazard_free(cmds in proptest::collection::vec(arb_cmd(3, 1), 1..20)) {
        let nbufs = 3;
        let len = 1 << 12;
        let mut g = GpuSystem::with_backing(MachineConfig::k40m(), false);
        g.set_hazard_checking(true);
        let host: Vec<_> = (0..nbufs).map(|_| g.malloc_host(len, HostMemKind::Pinned)).collect();
        let dev: Vec<_> = (0..nbufs).map(|_| g.malloc_device(len).unwrap()).collect();
        let s = g.create_stream();
        for cmd in &cmds {
            match *cmd {
                Cmd::H2d { buf, .. } => { g.memcpy_h2d_async(dev[buf], 0, host[buf], 0, len, s); }
                Cmd::D2h { buf, .. } => { g.memcpy_d2h_async(host[buf], 0, dev[buf], 0, len, s); }
                Cmd::Kernel { buf, us, .. } => {
                    g.launch_kernel(s, KernelLaunch::new("k", KernelCost::Fixed(SimTime::from_us(us)))
                        .writes(dev[buf].into()));
                }
                Cmd::EventChain { .. } | Cmd::StreamSync { .. } => g.stream_synchronize(s),
            }
        }
        g.finish();
        prop_assert!(g.check_hazards().is_empty());
    }
}

// ---------------------------------------------------------------------------
// Negative controls for the happens-before detector: deliberately
// mis-ordered programs must be pinned to the exact hazard kind and buffer,
// and restoring the ordering must silence the detector completely.
// ---------------------------------------------------------------------------

/// A two-stream program with an H2D on one stream and a dependent kernel
/// read on another; `chained` inserts the event that orders them.
fn h2d_then_foreign_read(chained: bool) -> GpuSystem {
    let mut g = GpuSystem::new(MachineConfig::k40m());
    g.set_deep_hazard_tracking(true);
    let h = g.malloc_host(1024, HostMemKind::Pinned);
    let d = g.malloc_device(1024).unwrap();
    let s_copy = g.create_stream();
    let s_k = g.create_stream();
    g.memcpy_h2d_async(d, 0, h, 0, 1024, s_copy);
    if chained {
        let ev = g.record_event(s_copy);
        g.stream_wait_event(s_k, ev);
    }
    g.launch_kernel(
        s_k,
        KernelLaunch::new("consumer", KernelCost::Fixed(SimTime::from_us(10))).reads(d.into()),
    );
    g.finish();
    g
}

#[test]
fn misordered_read_pins_use_before_transfer_at_the_exact_site() {
    let g = h2d_then_foreign_read(false);
    let hz = g.hazard_counters();
    assert_eq!(hz.use_before_transfer, 1, "{hz:?}");
    assert_eq!(hz.total(), 1, "exactly the seeded hazard, nothing else");
    let recs = g.hazard_records();
    assert_eq!(recs.len(), 1);
    let r = &recs[0];
    assert_eq!(r.kind, HazardKind::UseBeforeTransfer);
    assert_eq!(r.buffer, BufKey::Device(0), "the exact buffer is named");
    assert_eq!(r.second_label, "consumer", "the racing reader is named");
    assert!(
        r.first_label.starts_with("H2D"),
        "the unordered producer is named: {}",
        r.first_label
    );
    // The deep trace replays the detection: one span, categorized by kind.
    let tr = g.hazard_trace();
    assert_eq!(tr.spans.len(), 1);
    assert_eq!(tr.spans[0].category, "use-before-transfer");
}

#[test]
fn event_chain_silences_the_same_program() {
    let g = h2d_then_foreign_read(true);
    let hz = g.hazard_counters();
    assert_eq!(hz.total(), 0, "ordered program must be hazard-free: {hz:?}");
    assert!(g.hazard_records().is_empty());
    assert!(g.hazard_trace().spans.is_empty());
}

#[test]
fn misordered_writer_pins_write_after_read() {
    let mut g = GpuSystem::new(MachineConfig::k40m());
    g.set_deep_hazard_tracking(true);
    let h = g.malloc_host(1024, HostMemKind::Pinned);
    let d = g.malloc_device(1024).unwrap();
    let s0 = g.create_stream();
    let s1 = g.create_stream();
    // The D2H reads the buffer on s0; the kernel overwrites it on s1 with
    // no ordering between them — a write-after-read race on Device(0).
    g.memcpy_h2d_async(d, 0, h, 0, 1024, s0);
    let ev = g.record_event(s0);
    g.stream_wait_event(s1, ev); // the load itself is properly ordered
    g.memcpy_d2h_async(h, 0, d, 0, 1024, s0);
    g.launch_kernel(
        s1,
        KernelLaunch::new("overwriter", KernelCost::Fixed(SimTime::from_us(10))).writes(d.into()),
    );
    g.finish();
    let hz = g.hazard_counters();
    assert_eq!(hz.write_after_read, 1, "{hz:?}");
    let recs = g.hazard_records();
    let r = recs
        .iter()
        .find(|r| r.kind == HazardKind::WriteAfterRead)
        .expect("WAR record present");
    assert_eq!(r.buffer, BufKey::Device(0));
    assert_eq!(r.second_label, "overwriter");
}

#[test]
fn tenant_tagging_counts_only_cross_tenant_buffer_touches() {
    let mut g = GpuSystem::new(MachineConfig::k40m());
    let h0 = g.malloc_host(256, HostMemKind::Pinned);
    let h1 = g.malloc_host(256, HostMemKind::Pinned);
    let d0 = g.malloc_device(256).unwrap();
    let d1 = g.malloc_device(256).unwrap();
    let s = g.create_stream();

    // Disjoint working sets: each tenant touches only its own buffers.
    g.set_tenant(Some(0));
    g.memcpy_h2d_async(d0, 0, h0, 0, 256, s);
    g.launch_kernel(
        s,
        KernelLaunch::new("t0", KernelCost::Fixed(SimTime::from_us(5)))
            .reads(d0.into())
            .writes(d0.into()),
    );
    g.set_tenant(Some(1));
    g.memcpy_h2d_async(d1, 0, h1, 0, 256, s);
    g.memcpy_d2h_async(h1, 0, d1, 0, 256, s);
    g.finish();
    assert_eq!(g.cross_tenant_touches(), 0, "disjoint tenants never cross");
    assert_eq!(g.current_tenant(), Some(1));

    // Untenanted runtime work on tenant 0's buffers does not count either.
    g.set_tenant(None);
    g.memcpy_d2h_async(h0, 0, d0, 0, 256, s);
    g.finish();
    assert_eq!(g.cross_tenant_touches(), 0, "untenanted work is exempt");

    // Tenant 1 reading tenant 0's device buffer is a cross-tenant touch
    // (d0 read + h1 write: only the foreign buffer counts).
    g.set_tenant(Some(1));
    g.memcpy_d2h_async(h1, 0, d0, 0, 256, s);
    g.finish();
    assert_eq!(g.cross_tenant_touches(), 1, "foreign buffer touch counted");
}
