//! Embarrassingly-parallel multi-run driver.
//!
//! A [`crate::Scheduler`] (and everything layered on it) is self-contained
//! and deterministic: two runs of the same program produce bit-identical
//! results, and runs share no mutable state. Sweeps over seeds, schedules
//! or configurations are therefore trivially parallel — each job builds,
//! runs and consumes its own simulator on its own OS thread.
//!
//! The driver guarantees:
//! - results come back in **job order**, regardless of which thread ran
//!   which job or in what order they finished;
//! - each job runs **exactly once**, on exactly one thread;
//! - a panicking job propagates the panic to the caller (after the other
//!   workers drain).
//!
//! Combined with the determinism of each job, output is bit-identical to
//! running the jobs sequentially — the equivalence suite asserts this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs batches of independent jobs across a fixed number of OS threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelDriver {
    threads: usize,
}

impl ParallelDriver {
    /// A driver fanning out over `threads` OS threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        ParallelDriver {
            threads: threads.max(1),
        }
    }

    /// A driver using the host's available parallelism.
    pub fn host_parallel() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads this driver uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every job, returning results in job order.
    ///
    /// Jobs are claimed from a shared counter, so threads stay busy until
    /// the batch drains regardless of per-job runtime variance.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("job claimed exactly once");
                    let out = job();
                    *results[i].lock().unwrap() = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every job ran"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let driver = ParallelDriver::new(4);
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    // Uneven job cost scrambles completion order.
                    let mut acc = i as u64;
                    for _ in 0..((i * 37) % 1000) {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    (i, acc)
                }
            })
            .collect();
        let seq: Vec<_> = (0..64)
            .map(|i| {
                let mut acc = i as u64;
                for _ in 0..((i * 37) % 1000) {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i, acc)
            })
            .collect();
        assert_eq!(driver.run(jobs), seq);
    }

    #[test]
    fn single_thread_driver_matches() {
        let mk = |i: usize| move || i * i;
        let a = ParallelDriver::new(1).run((0..10).map(mk).collect::<Vec<_>>());
        let b = ParallelDriver::new(3).run((0..10).map(mk).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_is_fine() {
        let driver = ParallelDriver::new(2);
        let out: Vec<u32> = driver.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }
}
