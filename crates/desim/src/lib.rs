//! `desim` — a deterministic discrete-event engine.
//!
//! This crate is the timing substrate of the GPU platform simulator
//! (`gpu-sim`): simulated time ([`SimTime`]), capacity-k FIFO engines,
//! dependency-scheduled operations with data-effect callbacks
//! ([`Scheduler`]), and recorded span traces ([`Trace`]).
//!
//! It knows nothing about GPUs; `gpu-sim` maps CUDA-style streams, copy
//! engines and kernels onto these primitives.

mod intern;
mod parallel;
mod scheduler;
mod time;
mod trace;

pub use intern::{intern, intern_fmt, intern_static, Sym};
pub use parallel::ParallelDriver;
pub use scheduler::{
    Bound, Candidate, CriticalStep, Effect, EngineCounters, EngineId, Op, OpId, RawSpan,
    ScheduleOracle, Scheduler, TraceLevel,
};
pub use time::SimTime;
pub use trace::{Span, Trace};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One op as (engine, duration, not_before, deps-as-earlier-indices).
    type ArbOp = (usize, u64, u64, Vec<usize>);

    /// Random op DAGs: every schedule must satisfy the three invariants
    /// (capacity-1 engine exclusivity, dependency order, not_before).
    fn arb_program() -> impl Strategy<Value = (usize, Vec<ArbOp>)> {
        (1usize..4).prop_flat_map(|nengines| {
            let ops = proptest::collection::vec(
                (
                    0usize..nengines,
                    0u64..100,
                    0u64..50,
                    proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
                ),
                1..40,
            )
            .prop_map(move |raw| {
                raw.into_iter()
                    .enumerate()
                    .map(|(i, (e, d, nb, deps))| {
                        let deps: Vec<usize> = if i == 0 {
                            vec![]
                        } else {
                            deps.into_iter().map(|ix| ix.index(i)).collect()
                        };
                        (e, d, nb, deps)
                    })
                    .collect::<Vec<_>>()
            });
            (Just(nengines), ops)
        })
    }

    proptest! {
        #[test]
        fn prop_schedule_invariants((nengines, prog) in arb_program()) {
            let mut s = Scheduler::new();
            let engines: Vec<EngineId> = (0..nengines).map(|i| s.add_engine(format!("e{i}"), 1)).collect();
            s.set_tracing(true);
            let mut ids: Vec<OpId> = Vec::new();
            for (e, d, nb, deps) in &prog {
                let op = Op::on(engines[*e], SimTime::from_ns(*d))
                    .not_before(SimTime::from_ns(*nb))
                    .after_all(deps.iter().map(|&i| ids[i]));
                ids.push(s.submit(op));
            }
            let makespan = s.run_all();

            // 1. deps respected + not_before respected
            for (i, (_, _, nb, deps)) in prog.iter().enumerate() {
                let start = s.start_of(ids[i]).unwrap();
                prop_assert!(start >= SimTime::from_ns(*nb));
                for &d in deps {
                    prop_assert!(s.completion(ids[d]).unwrap() <= start);
                }
            }
            // 2. capacity-1 engines never overlap
            let trace = s.trace();
            for e in 0..nengines {
                let spans = trace.spans_of(e);
                for w in spans.windows(2) {
                    prop_assert!(w[0].end <= w[1].start,
                        "engine {e} overlap: {:?}..{:?} then {:?}..{:?}",
                        w[0].start, w[0].end, w[1].start, w[1].end);
                }
            }
            // 3. makespan bounds: at least the longest op, at most sum + max not_before
            let total: u64 = prog.iter().map(|(_, d, _, _)| d).sum();
            let max_nb: u64 = prog.iter().map(|(_, _, nb, _)| *nb).max().unwrap_or(0);
            prop_assert!(makespan.as_ns() <= total + max_nb);
            let longest: u64 = prog.iter().map(|(_, d, _, _)| *d).max().unwrap_or(0);
            prop_assert!(makespan.as_ns() >= longest);

            // 4. the critical path is time-contiguous, ends at the makespan,
            //    and terminates at a host-bound op.
            let path = s.critical_path();
            prop_assert!(!path.is_empty());
            prop_assert_eq!(path[0].end, makespan);
            for w in path.windows(2) {
                // Dependency/Engine bounds abut exactly; HostAfter may leave
                // a gap covered by host-side time.
                match w[0].bound {
                    Bound::HostAfter(_) => prop_assert!(w[0].start >= w[1].end),
                    _ => prop_assert_eq!(w[0].start, w[1].end, "critical path has a gap"),
                }
            }
            prop_assert!(matches!(path.last().unwrap().bound, Bound::Host));
        }

        /// The scheduler is deterministic: same program, same schedule.
        #[test]
        fn prop_deterministic((nengines, prog) in arb_program()) {
            let run = || {
                let mut s = Scheduler::new();
                let engines: Vec<EngineId> = (0..nengines).map(|i| s.add_engine(format!("e{i}"), 1)).collect();
                let mut ids: Vec<OpId> = Vec::new();
                for (e, d, nb, deps) in &prog {
                    let op = Op::on(engines[*e], SimTime::from_ns(*d))
                        .not_before(SimTime::from_ns(*nb))
                        .after_all(deps.iter().map(|&i| ids[i]));
                    ids.push(s.submit(op));
                }
                s.run_all();
                ids.iter().map(|&i| (s.start_of(i).unwrap(), s.completion(i).unwrap())).collect::<Vec<_>>()
            };
            prop_assert_eq!(run(), run());
        }
    }
}
