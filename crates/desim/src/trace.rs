//! Execution traces.
//!
//! When tracing is enabled, the scheduler records one [`Span`] per executed
//! operation. Spans can be rendered as an ASCII Gantt chart (one lane per
//! engine server — this regenerates the paper's Fig. 3/7 timelines) or
//! exported as Chrome trace-event JSON for `chrome://tracing` / Perfetto.

use crate::time::SimTime;
use serde::Serialize;
use std::fmt::Write as _;

/// One executed operation on one engine server.
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Index of the engine the operation ran on.
    pub engine: usize,
    /// Server slot within the engine (0 for capacity-1 engines).
    pub server: usize,
    /// Operation label, e.g. `H2D:R3`.
    pub label: String,
    /// Coarse category, e.g. `h2d`, `kernel`, `host`.
    pub category: String,
    pub start: SimTime,
    pub end: SimTime,
    /// Submission index of the operation — a stable tiebreak so span order
    /// is fully deterministic even at equal timestamps.
    pub seq: u64,
}

/// A recorded schedule: engine names plus the spans that ran on them.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub engine_names: Vec<String>,
    pub spans: Vec<Span>,
}

impl Trace {
    /// An empty trace over the given lanes. Used by consumers that build
    /// traces from their own observations (e.g. the gpu-sim hazard
    /// detector's replayable hazard trace) rather than from a scheduler run.
    pub fn new(engine_names: Vec<String>) -> Self {
        Trace {
            engine_names,
            spans: Vec::new(),
        }
    }

    /// Append one span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Latest end time over all spans.
    pub fn makespan(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time of one engine (sum of its span durations).
    pub fn busy_time(&self, engine: usize) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.engine == engine)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Spans of one engine, in start order. Ties at equal timestamps are
    /// broken by server slot and then submission sequence, so two runs that
    /// produce the same schedule (e.g. a checkpoint-resumed run vs an
    /// uninterrupted one) sort their spans identically.
    pub fn spans_of(&self, engine: usize) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.engine == engine).collect();
        v.sort_by_key(|s| (s.start, s.end, s.server, s.seq));
        v
    }

    /// Simulated time during which `a` and `b` both had a span in flight.
    ///
    /// This is the quantity behind the paper's overlap claims: e.g. the time
    /// the H2D copy engine and the compute engine were concurrently busy.
    pub fn overlap_time(&self, a: usize, b: usize) -> SimTime {
        let mut total = 0u64;
        for sa in self.spans.iter().filter(|s| s.engine == a) {
            for sb in self.spans.iter().filter(|s| s.engine == b) {
                let lo = sa.start.max(sb.start);
                let hi = sa.end.min(sb.end);
                if lo < hi {
                    total += (hi - lo).as_ns();
                }
            }
        }
        SimTime::from_ns(total)
    }

    /// Simulated time during which at least one of `engines` had a span in
    /// flight — the union of their busy intervals, so double-busy time is
    /// counted once (unlike summing [`Trace::busy_time`] per engine).
    pub fn union_busy_time(&self, engines: &[usize]) -> SimTime {
        let mut ivals: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .filter(|s| engines.contains(&s.engine) && s.end > s.start)
            .map(|s| (s.start, s.end))
            .collect();
        ivals.sort_unstable();
        let mut total = 0u64;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (lo, hi) in ivals {
            match &mut cur {
                Some((_, end)) if lo <= *end => *end = (*end).max(hi),
                _ => {
                    if let Some((s, e)) = cur {
                        total += (e - s).as_ns();
                    }
                    cur = Some((lo, hi));
                }
            }
        }
        if let Some((s, e)) = cur {
            total += (e - s).as_ns();
        }
        SimTime::from_ns(total)
    }

    /// Fraction of engine `a`'s busy time spent concurrently busy with
    /// engine `b`, in `[0, 1]`; `0.0` when `a` was never busy. With `a` a
    /// copy engine and `b` the compute engine this is the paper's "overlap
    /// fraction": how much of the transfer work was hidden behind kernels.
    pub fn overlap_fraction(&self, a: usize, b: usize) -> f64 {
        let busy = self.busy_time(a).as_ns();
        if busy == 0 {
            return 0.0;
        }
        self.overlap_time(a, b).as_ns() as f64 / busy as f64
    }

    /// Render an ASCII Gantt chart, `width` characters wide, one lane per
    /// (engine, server) pair that has at least one span.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(20);
        let makespan = self.makespan();
        let mut out = String::new();
        if makespan == SimTime::ZERO {
            out.push_str("(empty trace)\n");
            return out;
        }
        let ns_per_col = (makespan.as_ns() as f64 / width as f64).max(1.0);

        // Collect lanes in (engine, server) order.
        let mut lanes: Vec<(usize, usize)> =
            self.spans.iter().map(|s| (s.engine, s.server)).collect();
        lanes.sort_unstable();
        lanes.dedup();

        let label_w = lanes
            .iter()
            .map(|&(e, s)| self.lane_name(e, s).len())
            .max()
            .unwrap_or(4)
            .max(4);

        let _ = writeln!(
            out,
            "{:label_w$} |{}| 0 .. {makespan}",
            "lane",
            "-".repeat(width)
        );
        for &(e, srv) in &lanes {
            let mut row = vec![' '; width];
            for span in self
                .spans
                .iter()
                .filter(|s| s.engine == e && s.server == srv)
            {
                let c0 = (span.start.as_ns() as f64 / ns_per_col) as usize;
                let c1 = ((span.end.as_ns() as f64 / ns_per_col).ceil() as usize).min(width);
                let glyph = span
                    .label
                    .chars()
                    .next()
                    .filter(|c| c.is_ascii_graphic())
                    .unwrap_or('#');
                for cell in row
                    .iter_mut()
                    .take(c1)
                    .skip(c0.min(width.saturating_sub(1)))
                {
                    *cell = glyph;
                }
            }
            let _ = writeln!(
                out,
                "{:label_w$} |{}|",
                self.lane_name(e, srv),
                row.into_iter().collect::<String>()
            );
        }
        out
    }

    fn lane_name(&self, engine: usize, server: usize) -> String {
        let base = self
            .engine_names
            .get(engine)
            .cloned()
            .unwrap_or_else(|| format!("eng{engine}"));
        if server == 0 {
            base
        } else {
            format!("{base}.{server}")
        }
    }

    /// Export as Chrome trace-event JSON (`chrome://tracing`, Perfetto).
    pub fn to_chrome_json(&self) -> String {
        #[derive(Serialize)]
        struct Event<'a> {
            name: &'a str,
            cat: &'a str,
            ph: &'a str,
            ts: f64,
            dur: f64,
            pid: usize,
            tid: usize,
        }
        let events: Vec<Event<'_>> = self
            .spans
            .iter()
            .map(|s| Event {
                name: &s.label,
                cat: &s.category,
                ph: "X",
                ts: s.start.as_us_f64(),
                dur: (s.end - s.start).as_us_f64(),
                pid: 0,
                tid: s.engine * 64 + s.server,
            })
            .collect();
        serde_json::to_string(&events).expect("trace serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(engine: usize, server: usize, label: &str, start: u64, end: u64) -> Span {
        Span {
            engine,
            server,
            label: label.to_string(),
            category: "test".to_string(),
            start: SimTime::from_ns(start),
            end: SimTime::from_ns(end),
            seq: start,
        }
    }

    fn sample() -> Trace {
        Trace {
            engine_names: vec!["h2d".into(), "compute".into()],
            spans: vec![
                span(0, 0, "H2D:R0", 0, 100),
                span(0, 0, "H2D:R1", 100, 200),
                span(1, 0, "K:R0", 100, 250),
            ],
        }
    }

    #[test]
    fn makespan_and_busy_time() {
        let t = sample();
        assert_eq!(t.makespan(), SimTime::from_ns(250));
        assert_eq!(t.busy_time(0), SimTime::from_ns(200));
        assert_eq!(t.busy_time(1), SimTime::from_ns(150));
        assert_eq!(t.busy_time(7), SimTime::ZERO);
    }

    #[test]
    fn overlap_time_counts_concurrent_ns() {
        let t = sample();
        // H2D:R1 [100,200) overlaps K:R0 [100,250) for 100ns.
        assert_eq!(t.overlap_time(0, 1), SimTime::from_ns(100));
        assert_eq!(t.overlap_time(1, 0), SimTime::from_ns(100));
    }

    #[test]
    fn union_busy_time_merges_overlapping_intervals() {
        let t = sample();
        // Engine 0 busy [0,200), engine 1 busy [100,250): union [0,250).
        assert_eq!(t.union_busy_time(&[0, 1]), SimTime::from_ns(250));
        assert_eq!(t.union_busy_time(&[0]), SimTime::from_ns(200));
        assert_eq!(t.union_busy_time(&[]), SimTime::ZERO);
        // Disjoint spans don't merge.
        let mut t2 = sample();
        t2.spans.push(span(0, 0, "late", 500, 600));
        assert_eq!(t2.union_busy_time(&[0]), SimTime::from_ns(300));
    }

    #[test]
    fn overlap_fraction_is_normalized_overlap() {
        let t = sample();
        // Engine 0 busy 200ns, 100ns of it concurrent with engine 1.
        assert!((t.overlap_fraction(0, 1) - 0.5).abs() < 1e-12);
        // Engine 1 busy 150ns, 100ns concurrent with engine 0.
        assert!((t.overlap_fraction(1, 0) - 100.0 / 150.0).abs() < 1e-12);
        assert_eq!(t.overlap_fraction(7, 0), 0.0, "idle engine yields 0");
    }

    #[test]
    fn spans_of_sorted_by_start() {
        let mut t = sample();
        t.spans.swap(0, 1);
        let spans = t.spans_of(0);
        assert_eq!(spans[0].label, "H2D:R0");
        assert_eq!(spans[1].label, "H2D:R1");
    }

    #[test]
    fn spans_of_breaks_timestamp_ties_by_server_then_seq() {
        let mut a = span(0, 1, "late-slot", 0, 100);
        a.seq = 0;
        let mut b = span(0, 0, "early-slot", 0, 100);
        b.seq = 9;
        let mut c = span(0, 0, "first-submitted", 0, 100);
        c.seq = 3;
        let t = Trace {
            engine_names: vec!["e".into()],
            spans: vec![a, b, c],
        };
        let order: Vec<&str> = t.spans_of(0).iter().map(|s| s.label.as_str()).collect();
        assert_eq!(order, vec!["first-submitted", "early-slot", "late-slot"]);
    }

    #[test]
    fn gantt_renders_all_lanes() {
        let g = sample().render_gantt(40);
        assert!(g.contains("h2d"));
        assert!(g.contains("compute"));
        assert!(g.contains('H'));
        assert!(g.contains('K'));
    }

    #[test]
    fn gantt_empty_trace() {
        let t = Trace::default();
        assert!(t.render_gantt(40).contains("empty"));
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let json = sample().to_chrome_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 3);
        assert_eq!(parsed[0]["ph"], "X");
    }
}
