//! Dependency-driven list scheduler.
//!
//! The model: a fixed set of *engines* (capacity-k FIFO servers — copy
//! engines, the compute engine, ...), and *operations* submitted
//! incrementally. An operation carries
//!
//! * the engine it must run on (or none, for zero-cost markers),
//! * a duration (from the cost model),
//! * a `not_before` time — the host clock at enqueue; hardware cannot start
//!   work before the host issued it,
//! * dependencies on previously submitted operations (stream FIFO order and
//!   cross-stream event waits are expressed this way), and
//! * an optional *effect*: a closure applied when the operation executes,
//!   which is how simulated copies and kernels move real data.
//!
//! Operations become *ready* when all dependencies have completed (and
//! `not_before` has passed); ready operations are admitted to their engine in
//! ready-time order (ties broken by submission order), starting at
//! `max(ready, earliest-free-server)`. This mirrors how CUDA hardware queues
//! drain work and makes the schedule — and therefore every simulated run —
//! fully deterministic.
//!
//! Effects are applied in scheduling order. For programs whose conflicting
//! accesses are ordered by dependencies (as any correct stream program is),
//! this coincides with data order; see `gpu-sim`'s hazard checker for the
//! racy case.
//!
//! # Hot-path design
//!
//! This scheduler is the inner loop of every bench, sweep and schedule-space
//! walk in the workspace, so the per-op path is allocation-free in the
//! steady state:
//!
//! * labels and categories are interned [`Sym`]s (`Copy`, u32) — no
//!   per-op `String`;
//! * dependency and footprint lists ride inline in the [`Op`] builder
//!   (spilling to the heap only past 4 entries) and land in shared arenas
//!   (`fp_arena`, the dependents edge list) instead of per-node `Vec`s;
//! * the ready queue is a binary heap keyed `(ready_ns, submission idx)`;
//!   with no oracle installed a pop is O(log n) with no allocation, and the
//!   oracle candidate view is built lazily only at real decision points
//!   (>1 runnable op) from a reused scratch buffer;
//! * span recording sits behind a [`TraceLevel`]: `Off` records nothing,
//!   `Counters` keeps per-engine busy/op tallies, `Full` records `Sym`-keyed
//!   spans (still no string allocation; strings materialize only when a
//!   [`Trace`] is exported).

use crate::intern::{intern_static, Sym};
use crate::time::SimTime;
use crate::trace::{Span, Trace};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::OnceLock;

/// Handle to an engine registered with [`Scheduler::add_engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineId(pub usize);

/// Handle to a submitted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub usize);

/// Closure applied when an operation executes.
pub type Effect = Box<dyn FnOnce()>;

/// How much execution history the scheduler records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No spans, no counters: the fastest mode, for throughput sweeps.
    #[default]
    Off,
    /// Per-engine busy-time and op-count tallies, no spans.
    Counters,
    /// Counters plus one span per executed op (Gantt/Chrome export,
    /// overlap analysis, byte-accounting conformance checks).
    Full,
}

/// Per-engine execution tallies, maintained at [`TraceLevel::Counters`] and
/// above. Two runs of the same program agree exactly, whatever the level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Ops executed on this engine.
    pub ops: u64,
    /// Sum of op durations (busy time across all servers), in ns.
    pub busy_ns: u64,
}

/// One recorded span, as stored on the hot path: `Sym` labels, no strings.
/// [`Scheduler::trace`] materializes these into [`Span`]s.
#[derive(Debug, Clone, Copy)]
pub struct RawSpan {
    pub engine: u32,
    pub server: u32,
    pub label: Sym,
    pub category: Sym,
    pub start: SimTime,
    pub end: SimTime,
    /// Submission index of the operation.
    pub seq: u64,
}

/// One admissible operation at a scheduling decision point, as presented to
/// a [`ScheduleOracle`]. Candidates are sorted by `(ready, submission
/// index)`, so index 0 is always the op the default FIFO policy would admit.
#[derive(Debug)]
pub struct Candidate<'a> {
    pub op: OpId,
    /// When the op's dependencies allowed it to start.
    pub ready: SimTime,
    /// Engine the op occupies (`None` for markers).
    pub engine: Option<EngineId>,
    pub label: Sym,
    pub category: Sym,
    /// Resources touched, as `(resource, is_write)` pairs (see
    /// [`Op::touches`]). Two candidates with no engine conflict and no
    /// conflicting resource pair commute.
    pub footprint: &'a [(u64, bool)],
}

/// Pluggable admission policy: whenever more than one submitted operation is
/// simultaneously runnable (all dependencies satisfied), the oracle — not
/// FIFO arrival order — picks which one the scheduler admits next.
///
/// `choose` receives the candidate set sorted by `(ready, submission index)`
/// and returns an index into it; returning 0 everywhere reproduces the
/// default deterministic schedule exactly. The oracle is *not* consulted
/// when only a single op is ready, so a decision sequence indexes exactly
/// the points where the schedule space branches.
pub trait ScheduleOracle {
    fn choose(&mut self, candidates: &[Candidate<'_>]) -> usize;
}

/// Inline-first list: op dependency and footprint sets are almost always
/// tiny, so the builder keeps the first `N` entries on the stack and spills
/// to the heap only past that.
struct SmallList<T: Copy + Default, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallList<T, N> {
    fn new() -> Self {
        SmallList {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, v: T) {
        if self.len < N {
            self.inline[self.len] = v;
        } else {
            self.spill.push(v);
        }
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.inline[..self.len.min(N)]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }
}

fn default_label(marker: bool) -> Sym {
    static OP: OnceLock<Sym> = OnceLock::new();
    static MARKER: OnceLock<Sym> = OnceLock::new();
    if marker {
        *MARKER.get_or_init(|| intern_static("marker"))
    } else {
        *OP.get_or_init(|| intern_static("op"))
    }
}

/// Description of one operation; build with [`Op::on`] / [`Op::marker`].
pub struct Op {
    engine: Option<EngineId>,
    duration: SimTime,
    not_before: SimTime,
    deps: SmallList<usize, 4>,
    label: Option<Sym>,
    category: Option<Sym>,
    effect: Option<Effect>,
    host_cause: Option<OpId>,
    footprint: SmallList<(u64, bool), 4>,
}

impl Op {
    /// An operation occupying `engine` for `duration`.
    pub fn on(engine: EngineId, duration: SimTime) -> Self {
        Op {
            engine: Some(engine),
            duration,
            not_before: SimTime::ZERO,
            deps: SmallList::new(),
            label: None,
            category: None,
            effect: None,
            host_cause: None,
            footprint: SmallList::new(),
        }
    }

    /// A zero-duration operation bound to no engine; completes as soon as its
    /// dependencies do. Used for events/fences.
    pub fn marker() -> Self {
        Op {
            engine: None,
            duration: SimTime::ZERO,
            not_before: SimTime::ZERO,
            deps: SmallList::new(),
            label: None,
            category: None,
            effect: None,
            host_cause: None,
            footprint: SmallList::new(),
        }
    }

    /// Earliest start (host enqueue time).
    pub fn not_before(mut self, t: SimTime) -> Self {
        self.not_before = t;
        self
    }

    /// Add one dependency.
    pub fn after(mut self, dep: OpId) -> Self {
        self.deps.push(dep.0);
        self
    }

    /// Add dependencies.
    pub fn after_all(mut self, deps: impl IntoIterator<Item = OpId>) -> Self {
        for d in deps {
            self.deps.push(d.0);
        }
        self
    }

    /// Label shown in traces. Anything stringy converts ([`Sym`] itself is
    /// the allocation-free fast path — see [`crate::intern`]).
    pub fn label(mut self, label: impl Into<Sym>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Trace category (e.g. `h2d`, `kernel`, `host`).
    pub fn category(mut self, category: impl Into<Sym>) -> Self {
        self.category = Some(category.into());
        self
    }

    /// Data effect applied at execution.
    pub fn effect(mut self, f: impl FnOnce() + 'static) -> Self {
        self.effect = Some(Box::new(f));
        self
    }

    /// Attribute this op's `not_before` to a host stall on `op` (the host
    /// blocked on it before enqueueing this). Purely for critical-path
    /// attribution; no timing effect.
    pub fn host_cause(mut self, op: Option<OpId>) -> Self {
        self.host_cause = op;
        self
    }

    /// Declare that this op reads (`write == false`) or writes
    /// (`write == true`) the abstract resource `resource`. Footprints feed
    /// the [`ScheduleOracle`] independence relation (DPOR): two ops on
    /// different engines whose footprints share no resource with a write on
    /// either side commute, so explorers may prune one of their orders.
    /// Footprints have no effect on scheduling itself.
    pub fn touches(mut self, resource: u64, write: bool) -> Self {
        self.footprint.push((resource, write));
        self
    }
}

struct Engine {
    /// Earliest time each server slot becomes free.
    servers: Vec<SimTime>,
    /// Last op executed on each server (for critical-path attribution).
    last_on_server: Vec<Option<usize>>,
}

/// Sentinel for "no edge" in the dependents edge arena.
const NO_EDGE: u32 = u32::MAX;

struct OpNode {
    engine: Option<EngineId>,
    duration: SimTime,
    label: Sym,
    category: Sym,
    remaining_deps: u32,
    /// Head of this op's dependents chain in [`Scheduler::dep_edges`].
    dependents_head: u32,
    /// max(not_before, ends of resolved deps so far).
    ready_time: SimTime,
    /// The dependency whose completion set `ready_time` (None when bound by
    /// `not_before`, i.e. the host).
    binding_dep: Option<usize>,
    start: Option<SimTime>,
    end: Option<SimTime>,
    effect: Option<Effect>,
    host_cause: Option<OpId>,
    /// What delayed this op's start (filled at execution).
    bound: Bound,
    /// Footprint slice in [`Scheduler::fp_arena`].
    fp_start: u32,
    fp_len: u32,
}

/// Why an operation started when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Started at its host enqueue time (`not_before`).
    Host,
    /// Started at its host enqueue time, and the host was there because it
    /// had blocked on the given op shortly before.
    HostAfter(OpId),
    /// Waited for a dependency (stream order / event) to complete.
    Dependency(OpId),
    /// Waited for its engine to become free behind another op.
    Engine(OpId),
}

/// One step of a critical path: the op, its timing, and what it waited for.
/// Labels are interned — compare with `==` against other syms or `&str`,
/// resolve with [`Sym::as_str`].
#[derive(Debug, Clone)]
pub struct CriticalStep {
    pub op: OpId,
    pub label: Sym,
    pub category: Sym,
    pub start: SimTime,
    pub end: SimTime,
    pub bound: Bound,
}

/// The list scheduler. See the module docs for the model.
#[derive(Default)]
pub struct Scheduler {
    engines: Vec<Engine>,
    engine_names: Vec<String>,
    ops: Vec<OpNode>,
    /// Ready ops as (ready_time_ns, op_index); min-heap via `Reverse`.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    executed: usize,
    max_end: SimTime,
    /// Op with the latest completion so far.
    last_finished: Option<usize>,
    level: TraceLevel,
    spans: Vec<RawSpan>,
    counters: Vec<EngineCounters>,
    /// Decision points seen so far: pops where >1 op was simultaneously
    /// runnable (the branching points a [`ScheduleOracle`] would be
    /// consulted at), counted whether or not one is installed.
    decision_points: u64,
    /// Footprint arena; op nodes hold (start, len) slices into it.
    fp_arena: Vec<(u64, bool)>,
    /// Dependents adjacency as a linked edge arena:
    /// `(dependent op, next edge)` chained from `OpNode::dependents_head`.
    dep_edges: Vec<(u32, u32)>,
    /// Reused buffer for draining the heap at oracle decision points.
    cand_scratch: Vec<(u64, usize)>,
    /// Admission policy override; `None` keeps the deterministic FIFO order.
    oracle: Option<Rc<RefCell<dyn ScheduleOracle>>>,
}

impl Scheduler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an engine with `capacity` parallel servers (>= 1).
    pub fn add_engine(&mut self, name: impl Into<String>, capacity: usize) -> EngineId {
        assert!(capacity >= 1, "engine capacity must be at least 1");
        self.engines.push(Engine {
            servers: vec![SimTime::ZERO; capacity],
            last_on_server: vec![None; capacity],
        });
        self.engine_names.push(name.into());
        self.counters.push(EngineCounters::default());
        EngineId(self.engines.len() - 1)
    }

    /// Set how much execution history is recorded. Levels only change what
    /// is *recorded* — timing, effects and schedule are identical at every
    /// level.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Current trace level.
    pub fn trace_level(&self) -> TraceLevel {
        self.level
    }

    /// Enable or disable span recording. Compatibility wrapper:
    /// `true` = [`TraceLevel::Full`], `false` = [`TraceLevel::Off`].
    pub fn set_tracing(&mut self, on: bool) {
        self.level = if on {
            TraceLevel::Full
        } else {
            TraceLevel::Off
        };
    }

    pub fn tracing(&self) -> bool {
        self.level == TraceLevel::Full
    }

    /// Install (or clear) a [`ScheduleOracle`]. With `None` — the default —
    /// ready ops are admitted in `(ready, submission)` order and the
    /// schedule is fully deterministic.
    pub fn set_oracle(&mut self, oracle: Option<Rc<RefCell<dyn ScheduleOracle>>>) {
        self.oracle = oracle;
    }

    /// Whether an oracle is currently installed.
    pub fn has_oracle(&self) -> bool {
        self.oracle.is_some()
    }

    /// Submit an operation. Dependencies must refer to already-submitted ops.
    pub fn submit(&mut self, op: Op) -> OpId {
        let id = self.ops.len();
        if let Some(EngineId(e)) = op.engine {
            assert!(e < self.engines.len(), "unknown engine {e}");
        }
        let mut ready_time = op.not_before;
        let mut binding_dep = None;
        let mut remaining = 0u32;
        for d in op.deps.iter() {
            assert!(d < id, "op {id} depends on not-yet-submitted op {d}");
            match self.ops[d].end {
                Some(end) => {
                    if end > ready_time || (end == ready_time && binding_dep.is_none()) {
                        ready_time = end;
                        binding_dep = Some(d);
                    }
                }
                None => {
                    self.dep_edges
                        .push((id as u32, self.ops[d].dependents_head));
                    self.ops[d].dependents_head = (self.dep_edges.len() - 1) as u32;
                    remaining += 1;
                }
            }
        }
        let fp_start = self.fp_arena.len() as u32;
        for f in op.footprint.iter() {
            self.fp_arena.push(f);
        }
        let fp_len = self.fp_arena.len() as u32 - fp_start;
        self.ops.push(OpNode {
            engine: op.engine,
            duration: op.duration,
            label: op
                .label
                .unwrap_or_else(|| default_label(op.engine.is_none())),
            category: op
                .category
                .unwrap_or_else(|| default_label(op.engine.is_none())),
            remaining_deps: remaining,
            dependents_head: NO_EDGE,
            ready_time,
            binding_dep,
            start: None,
            end: None,
            effect: op.effect,
            host_cause: op.host_cause,
            bound: Bound::Host,
            fp_start,
            fp_len,
        });
        if remaining == 0 {
            self.ready.push(Reverse((ready_time.as_ns(), id)));
        }
        OpId(id)
    }

    /// Completion time, if the op has executed.
    pub fn completion(&self, OpId(id): OpId) -> Option<SimTime> {
        self.ops[id].end
    }

    /// Start time, if the op has executed.
    pub fn start_of(&self, OpId(id): OpId) -> Option<SimTime> {
        self.ops[id].start
    }

    /// Number of operations executed so far.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Number of operations submitted so far.
    pub fn submitted(&self) -> usize {
        self.ops.len()
    }

    /// Latest completion time over all executed operations.
    pub fn max_end(&self) -> SimTime {
        self.max_end
    }

    /// The operation with the latest completion so far.
    pub fn last_finished(&self) -> Option<OpId> {
        self.last_finished.map(OpId)
    }

    /// Decision points encountered so far: pops at which more than one op
    /// was simultaneously runnable. This is the denominator of the
    /// `ns/decision-point` throughput metric and the length of a schedule
    /// explorer's decision sequence.
    pub fn decision_points(&self) -> u64 {
        self.decision_points
    }

    /// Per-engine tallies (zeroed at [`TraceLevel::Off`]).
    pub fn engine_counters(&self) -> &[EngineCounters] {
        &self.counters
    }

    /// Pop the next op to admit. FIFO `(ready, submission)` order without an
    /// oracle; otherwise the full ready set is presented to the oracle as a
    /// decision point (skipped when it is a singleton — no branching there).
    fn pop_next(&mut self) -> Option<usize> {
        let runnable = self.ready.len();
        if runnable == 0 {
            return None;
        }
        if runnable > 1 {
            self.decision_points += 1;
        }
        let oracle = match &self.oracle {
            // Fast path: no oracle, or no branching — a plain heap pop.
            None => return self.ready.pop().map(|Reverse((_, idx))| idx),
            Some(_) if runnable == 1 => return self.ready.pop().map(|Reverse((_, idx))| idx),
            Some(o) => Rc::clone(o),
        };
        // Real decision point: materialize the sorted candidate view.
        // Heap pops come out in exactly the (ready, submission) order the
        // oracle contract promises. The drain buffer is reused across
        // decisions; the `Candidate` view borrows ops/arena in place.
        let mut cands = std::mem::take(&mut self.cand_scratch);
        debug_assert!(cands.is_empty());
        while let Some(Reverse(c)) = self.ready.pop() {
            cands.push(c);
        }
        let view: Vec<Candidate<'_>> = cands
            .iter()
            .map(|&(ns, i)| {
                let o = &self.ops[i];
                Candidate {
                    op: OpId(i),
                    ready: SimTime::from_ns(ns),
                    engine: o.engine,
                    label: o.label,
                    category: o.category,
                    footprint: &self.fp_arena
                        [o.fp_start as usize..(o.fp_start + o.fp_len) as usize],
                }
            })
            .collect();
        let choice = oracle.borrow_mut().choose(&view);
        assert!(
            choice < cands.len(),
            "oracle chose {choice} of {}",
            cands.len()
        );
        drop(view);
        let (_, idx) = cands.swap_remove(choice);
        for &c in &cands {
            self.ready.push(Reverse(c));
        }
        cands.clear();
        self.cand_scratch = cands;
        Some(idx)
    }

    /// Execute one ready operation. Returns `false` when nothing is ready.
    fn step(&mut self) -> bool {
        let Some(idx) = self.pop_next() else {
            return false;
        };
        let (start, server) = match self.ops[idx].engine {
            None => (self.ops[idx].ready_time, 0),
            Some(EngineId(e)) => {
                let servers = &mut self.engines[e].servers;
                let (srv, _) = servers
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, t)| (**t, *i))
                    .expect("engine has at least one server");
                let start = self.ops[idx].ready_time.max(servers[srv]);
                (start, srv)
            }
        };
        let end = start + self.ops[idx].duration;
        // Attribute the delay: engine contention, a dependency, or the host.
        self.ops[idx].bound = match self.ops[idx].engine {
            Some(EngineId(e)) if start > self.ops[idx].ready_time => {
                match self.engines[e].last_on_server[server] {
                    Some(prev) => Bound::Engine(OpId(prev)),
                    None => Bound::Host,
                }
            }
            _ => match self.ops[idx].binding_dep {
                Some(d) => Bound::Dependency(OpId(d)),
                None => match self.ops[idx].host_cause {
                    Some(c) => Bound::HostAfter(c),
                    None => Bound::Host,
                },
            },
        };
        if let Some(EngineId(e)) = self.ops[idx].engine {
            self.engines[e].servers[server] = end;
            self.engines[e].last_on_server[server] = Some(idx);
            if self.level >= TraceLevel::Counters {
                self.counters[e].ops += 1;
                self.counters[e].busy_ns += self.ops[idx].duration.as_ns();
            }
            if self.level == TraceLevel::Full {
                self.spans.push(RawSpan {
                    engine: e as u32,
                    server: server as u32,
                    label: self.ops[idx].label,
                    category: self.ops[idx].category,
                    start,
                    end,
                    seq: idx as u64,
                });
            }
        }
        self.ops[idx].start = Some(start);
        self.ops[idx].end = Some(end);
        if end >= self.max_end {
            self.max_end = end;
            self.last_finished = Some(idx);
        }
        self.executed += 1;

        if let Some(effect) = self.ops[idx].effect.take() {
            effect();
        }

        // Resolve dependents along the edge chain. Chain order is reverse
        // submission order, which is irrelevant: each dependent's update is
        // independent, and the ready heap orders by (ready, submission).
        let mut edge = self.ops[idx].dependents_head;
        self.ops[idx].dependents_head = NO_EDGE;
        while edge != NO_EDGE {
            let (dep, next) = self.dep_edges[edge as usize];
            let node = &mut self.ops[dep as usize];
            if end > node.ready_time || (end == node.ready_time && node.binding_dep.is_none()) {
                node.ready_time = end;
                node.binding_dep = Some(idx);
            }
            node.remaining_deps -= 1;
            if node.remaining_deps == 0 {
                self.ready
                    .push(Reverse((node.ready_time.as_ns(), dep as usize)));
            }
            edge = next;
        }
        true
    }

    /// The chain of operations that determined the makespan, latest first:
    /// start from the op that finished last, then repeatedly follow whatever
    /// it waited for (a dependency or the op ahead of it on its engine)
    /// until an op that started at its host enqueue time.
    ///
    /// Call after [`Scheduler::run_all`]. Empty if nothing executed.
    pub fn critical_path(&self) -> Vec<CriticalStep> {
        let mut cur = self
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.end.is_some())
            .max_by_key(|(i, o)| (o.end.unwrap(), *i))
            .map(|(i, _)| i);
        let mut path = Vec::new();
        while let Some(i) = cur {
            let o = &self.ops[i];
            path.push(CriticalStep {
                op: OpId(i),
                label: o.label,
                category: o.category,
                start: o.start.expect("on path"),
                end: o.end.expect("on path"),
                bound: o.bound,
            });
            cur = match o.bound {
                Bound::Host => None,
                Bound::HostAfter(OpId(d)) | Bound::Dependency(OpId(d)) | Bound::Engine(OpId(d)) => {
                    Some(d)
                }
            };
        }
        path
    }

    /// Execute until `op` has completed; returns its completion time.
    ///
    /// Panics if `op` can never complete (which cannot happen for ops built
    /// from already-submitted dependencies).
    pub fn run_until(&mut self, op: OpId) -> SimTime {
        while self.ops[op.0].end.is_none() {
            assert!(self.step(), "deadlock: op {} not reachable", op.0);
        }
        self.ops[op.0].end.expect("just completed")
    }

    /// Execute every submitted operation; returns the makespan.
    pub fn run_all(&mut self) -> SimTime {
        while self.step() {}
        assert_eq!(
            self.executed,
            self.ops.len(),
            "internal error: ops stranded with unresolved dependencies"
        );
        self.max_end
    }

    /// The spans recorded so far as stored — interned labels, no string
    /// materialization. Empty unless the level is [`TraceLevel::Full`].
    pub fn raw_spans(&self) -> &[RawSpan] {
        &self.spans
    }

    /// The trace recorded so far (empty unless the level is
    /// [`TraceLevel::Full`]). Materializes label strings; use
    /// [`Scheduler::raw_spans`] on hot paths.
    pub fn trace(&self) -> Trace {
        Trace {
            engine_names: self.engine_names.clone(),
            spans: self.spans.iter().map(span_of_raw).collect(),
        }
    }
}

/// Materialize one stored span into the public string-labelled form.
pub fn span_of_raw(r: &RawSpan) -> Span {
    Span {
        engine: r.engine as usize,
        server: r.server as usize,
        label: r.label.as_str().to_string(),
        category: r.category.as_str().to_string(),
        start: r.start,
        end: r.end,
        seq: r.seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn single_op_runs_at_not_before() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let op = s.submit(Op::on(e, ns(10)).not_before(ns(5)));
        assert_eq!(s.run_until(op), ns(15));
        assert_eq!(s.start_of(op), Some(ns(5)));
    }

    #[test]
    fn fifo_on_capacity_one_engine() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(10)));
        s.run_all();
        assert_eq!(s.completion(a), Some(ns(10)));
        assert_eq!(s.completion(b), Some(ns(20)));
    }

    #[test]
    fn capacity_two_runs_in_parallel() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 2);
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(10)));
        let c = s.submit(Op::on(e, ns(10)));
        assert_eq!(s.run_all(), ns(20));
        assert_eq!(s.completion(a), Some(ns(10)));
        assert_eq!(s.completion(b), Some(ns(10)));
        assert_eq!(s.completion(c), Some(ns(20)));
    }

    #[test]
    fn dependencies_serialize_across_engines() {
        let mut s = Scheduler::new();
        let e1 = s.add_engine("copy", 1);
        let e2 = s.add_engine("compute", 1);
        let copy = s.submit(Op::on(e1, ns(100)));
        let kernel = s.submit(Op::on(e2, ns(50)).after(copy));
        assert_eq!(s.run_until(kernel), ns(150));
    }

    #[test]
    fn independent_engines_overlap() {
        let mut s = Scheduler::new();
        let e1 = s.add_engine("copy", 1);
        let e2 = s.add_engine("compute", 1);
        s.submit(Op::on(e1, ns(100)));
        s.submit(Op::on(e2, ns(100)));
        assert_eq!(s.run_all(), ns(100));
    }

    #[test]
    fn marker_completes_with_deps() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(20)));
        let m = s.submit(Op::marker().after(a).after(b));
        assert_eq!(s.run_until(m), ns(30));
    }

    #[test]
    fn effects_apply_in_dependency_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let l1 = log.clone();
        let a = s.submit(Op::on(e, ns(10)).effect(move || l1.borrow_mut().push("a")));
        let l2 = log.clone();
        let _b = s.submit(
            Op::on(e, ns(10))
                .after(a)
                .effect(move || l2.borrow_mut().push("b")),
        );
        s.run_all();
        assert_eq!(*log.borrow(), vec!["a", "b"]);
    }

    #[test]
    fn run_until_is_partial() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(10)));
        s.run_until(a);
        assert_eq!(s.completion(a), Some(ns(10)));
        // b may or may not have run; run_all finishes it.
        s.run_all();
        assert_eq!(s.completion(b), Some(ns(20)));
    }

    #[test]
    fn incremental_submission_after_running() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let a = s.submit(Op::on(e, ns(10)));
        s.run_all();
        // Submit an op depending on an already-finished one.
        let b = s.submit(Op::on(e, ns(5)).after(a).not_before(ns(100)));
        assert_eq!(s.run_until(b), ns(105));
    }

    #[test]
    fn ready_order_breaks_ties_by_submission() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let a = s.submit(Op::on(e, ns(10)).label("first"));
        let b = s.submit(Op::on(e, ns(10)).label("second"));
        s.set_tracing(true);
        // Both ready at t=0: submission order wins.
        s.run_all();
        assert!(s.start_of(a).unwrap() < s.start_of(b).unwrap());
    }

    #[test]
    fn tracing_records_spans() {
        let mut s = Scheduler::new();
        let e = s.add_engine("copy", 1);
        s.set_tracing(true);
        s.submit(Op::on(e, ns(10)).label("H2D:R0").category("h2d"));
        s.run_all();
        let t = s.trace();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].label, "H2D:R0");
        assert_eq!(t.spans[0].category, "h2d");
        assert_eq!(t.engine_names, vec!["copy".to_string()]);
    }

    #[test]
    fn no_tracing_no_spans() {
        let mut s = Scheduler::new();
        let e = s.add_engine("copy", 1);
        s.submit(Op::on(e, ns(10)));
        s.run_all();
        assert!(s.trace().spans.is_empty());
    }

    #[test]
    fn counters_level_tallies_without_spans() {
        let mut s = Scheduler::new();
        let e = s.add_engine("copy", 1);
        s.set_trace_level(TraceLevel::Counters);
        s.submit(Op::on(e, ns(10)));
        s.submit(Op::on(e, ns(5)));
        s.submit(Op::marker());
        s.run_all();
        assert!(s.raw_spans().is_empty());
        assert_eq!(
            s.engine_counters()[0],
            EngineCounters {
                ops: 2,
                busy_ns: 15
            }
        );
    }

    #[test]
    fn full_level_tallies_and_records() {
        let mut s = Scheduler::new();
        let e = s.add_engine("copy", 1);
        s.set_trace_level(TraceLevel::Full);
        s.submit(Op::on(e, ns(10)));
        s.run_all();
        assert_eq!(s.raw_spans().len(), 1);
        assert_eq!(
            s.engine_counters()[0],
            EngineCounters {
                ops: 1,
                busy_ns: 10
            }
        );
    }

    #[test]
    fn trace_levels_do_not_change_timing() {
        let run = |level: TraceLevel| {
            let mut s = Scheduler::new();
            let e = s.add_engine("e", 2);
            s.set_trace_level(level);
            let a = s.submit(Op::on(e, ns(10)));
            let b = s.submit(Op::on(e, ns(20)));
            let c = s.submit(Op::on(e, ns(5)).after(a).after(b));
            s.run_all();
            (
                s.completion(a),
                s.completion(b),
                s.completion(c),
                s.max_end(),
                s.decision_points(),
            )
        };
        let full = run(TraceLevel::Full);
        assert_eq!(run(TraceLevel::Off), full);
        assert_eq!(run(TraceLevel::Counters), full);
    }

    #[test]
    fn decision_points_count_branching_pops() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        // a and b ready together: one decision point; c waits on a, so its
        // pop is a singleton.
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(10)));
        let c = s.submit(Op::on(e, ns(10)).after(a).after(b));
        s.run_all();
        assert_eq!(s.decision_points(), 1);
        let _ = (b, c);
    }

    #[test]
    #[should_panic(expected = "not-yet-submitted")]
    fn forward_dependency_panics() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        s.submit(Op::on(e, ns(10)).after(OpId(5)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_engine_panics() {
        Scheduler::new().add_engine("bad", 0);
    }

    #[test]
    fn diamond_dependency() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 4);
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(20)).after(a));
        let c = s.submit(Op::on(e, ns(30)).after(a));
        let d = s.submit(Op::on(e, ns(5)).after(b).after(c));
        assert_eq!(s.run_until(d), ns(45)); // 10 + 30 + 5
    }

    #[test]
    fn many_deps_spill_past_inline_capacity() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 8);
        let pre: Vec<OpId> = (0..7).map(|i| s.submit(Op::on(e, ns(10 + i)))).collect();
        let gather = s.submit(
            Op::marker()
                .after_all(pre.iter().copied())
                .touches(1, false)
                .touches(2, false)
                .touches(3, false)
                .touches(4, true)
                .touches(5, true)
                .touches(6, false),
        );
        assert_eq!(s.run_until(gather), ns(16));
    }

    #[test]
    fn critical_path_follows_dependency_chain() {
        let mut s = Scheduler::new();
        let copy = s.add_engine("copy", 1);
        let comp = s.add_engine("compute", 1);
        let a = s.submit(Op::on(copy, ns(100)).label("h2d"));
        let b = s.submit(Op::on(comp, ns(50)).after(a).label("kernel"));
        let c = s.submit(Op::on(copy, ns(30)).after(b).label("d2h"));
        s.run_all();
        let path = s.critical_path();
        let labels: Vec<&str> = path.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["d2h", "kernel", "h2d"]);
        assert_eq!(path[0].bound, Bound::Dependency(b));
        assert_eq!(path[1].bound, Bound::Dependency(a));
        assert_eq!(path[2].bound, Bound::Host);
        // The path covers the makespan with no gaps (chained ops abut).
        assert_eq!(path[0].end, SimTime::from_ns(180));
        let _ = c;
    }

    #[test]
    fn critical_path_attributes_engine_contention() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let a = s.submit(Op::on(e, ns(100)).label("first"));
        let b = s.submit(Op::on(e, ns(10)).label("second"));
        s.run_all();
        let path = s.critical_path();
        assert_eq!(path[0].label, "second");
        assert_eq!(path[0].bound, Bound::Engine(a));
        assert_eq!(path[1].label, "first");
        let _ = b;
    }

    #[test]
    fn critical_path_empty_before_running() {
        let s = Scheduler::new();
        assert!(s.critical_path().is_empty());
    }

    #[test]
    fn counts_track_submission_and_execution() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        s.submit(Op::on(e, ns(1)));
        s.submit(Op::on(e, ns(1)));
        assert_eq!(s.submitted(), 2);
        assert_eq!(s.executed(), 0);
        s.run_all();
        assert_eq!(s.executed(), 2);
    }

    /// Oracle that always picks a fixed index (clamped) and logs the
    /// candidate sets it saw.
    struct Fixed {
        pick: usize,
        seen: Rc<RefCell<Vec<Vec<usize>>>>,
    }

    impl ScheduleOracle for Fixed {
        fn choose(&mut self, candidates: &[Candidate<'_>]) -> usize {
            self.seen
                .borrow_mut()
                .push(candidates.iter().map(|c| c.op.0).collect());
            self.pick.min(candidates.len() - 1)
        }
    }

    fn with_fixed(s: &mut Scheduler, pick: usize) -> Rc<RefCell<Vec<Vec<usize>>>> {
        let seen = Rc::new(RefCell::new(Vec::new()));
        s.set_oracle(Some(Rc::new(RefCell::new(Fixed {
            pick,
            seen: seen.clone(),
        }))));
        seen
    }

    #[test]
    fn oracle_choice_zero_reproduces_fifo() {
        let run = |oracle: bool| {
            let mut s = Scheduler::new();
            let e = s.add_engine("e", 1);
            if oracle {
                with_fixed(&mut s, 0);
            }
            let a = s.submit(Op::on(e, ns(10)));
            let b = s.submit(Op::on(e, ns(20)));
            let c = s.submit(Op::on(e, ns(5)).after(a));
            s.run_all();
            (s.completion(a), s.completion(b), s.completion(c))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn oracle_reorders_engine_admission() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let seen = with_fixed(&mut s, 1);
        let a = s.submit(Op::on(e, ns(10)).label("first"));
        let b = s.submit(Op::on(e, ns(10)).label("second"));
        s.run_all();
        // The oracle admitted b first, so it completes first.
        assert_eq!(s.completion(b), Some(ns(10)));
        assert_eq!(s.completion(a), Some(ns(20)));
        // Exactly one decision point: {a, b}; after removing b only a is
        // ready, which is not a decision.
        assert_eq!(*seen.borrow(), vec![vec![a.0, b.0]]);
        assert_eq!(s.decision_points(), 1);
    }

    #[test]
    fn oracle_not_consulted_for_singletons() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let seen = with_fixed(&mut s, 0);
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(10)).after(a));
        s.run_all();
        assert!(seen.borrow().is_empty());
        assert_eq!(s.completion(b), Some(ns(20)));
    }

    #[test]
    fn oracle_sees_footprints_sorted_fifo_first() {
        struct Probe;
        impl ScheduleOracle for Probe {
            fn choose(&mut self, candidates: &[Candidate<'_>]) -> usize {
                assert_eq!(candidates.len(), 2);
                // Sorted by (ready, submission): the earlier submission is
                // index 0, carrying its declared footprint.
                assert!(candidates[0].op < candidates[1].op);
                assert_eq!(candidates[0].footprint, &[(7, false)]);
                assert_eq!(candidates[1].footprint, &[(7, true), (9, false)]);
                assert_eq!(candidates[0].label, "rd");
                0
            }
        }
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 2);
        s.set_oracle(Some(Rc::new(RefCell::new(Probe))));
        s.submit(Op::on(e, ns(10)).label("rd").touches(7, false));
        s.submit(Op::on(e, ns(10)).touches(7, true).touches(9, false));
        s.run_all();
    }

    #[test]
    fn oracle_may_admit_later_ready_op_first() {
        // b becomes ready (not_before) later than a, but the oracle admits
        // it first; the engine then serves a behind it.
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        with_fixed(&mut s, 1);
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(10)).not_before(ns(100)));
        s.run_all();
        assert_eq!(s.start_of(b), Some(ns(100)));
        assert_eq!(s.completion(a), Some(ns(120)));
    }

    #[test]
    fn clearing_oracle_restores_fifo() {
        let mut s = Scheduler::new();
        let e = s.add_engine("e", 1);
        let seen = with_fixed(&mut s, 1);
        s.set_oracle(None);
        assert!(!s.has_oracle());
        let a = s.submit(Op::on(e, ns(10)));
        let b = s.submit(Op::on(e, ns(10)));
        s.run_all();
        assert!(seen.borrow().is_empty());
        assert!(s.start_of(a).unwrap() < s.start_of(b).unwrap());
    }
}
