//! Global string interner for op labels and categories.
//!
//! The scheduler hot path must not allocate per op, but labels are part of
//! the public surface: traces render them, the hazard tracker classifies by
//! them, the conformance suite parses byte counts out of them. The
//! compromise is a process-global leaky interner: every distinct label
//! string is stored once (leaked to `'static`), and ops carry a [`Sym`] —
//! a `Copy` `u32` handle that resolves back to `&'static str` at any time.
//!
//! Determinism rule: a `Sym`'s numeric id depends on interning order, which
//! differs across thread interleavings (the [`crate::ParallelDriver`] runs
//! simulations concurrently). Comparing symbols for *equality* is exact and
//! safe; **never order by the numeric id** — sort by `as_str()` when an
//! order is needed. Nothing in this crate orders by id.
//!
//! The table is append-only and leaked by design: the set of distinct
//! labels a simulation produces is tiny (engine names, op kinds, one label
//! per distinct transfer size), so "leaking" is a few kilobytes for the
//! life of the process in exchange for `&'static str` resolution with no
//! reference counting on the hot path.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a `Copy` handle into the global symbol table.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    /// Lookup by contents. Keys borrow the leaked `'static` strings.
    by_str: HashMap<&'static str, u32>,
    /// Resolution by id.
    strings: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Interner {
            by_str: HashMap::new(),
            strings: Vec::new(),
        };
        // Sym(0) is the empty string, so `Sym::default()` is cheap and
        // resolvable without touching the map.
        t.strings.push("");
        t.by_str.insert("", 0);
        RwLock::new(t)
    })
}

/// Intern `s`, leaking a copy on first sight.
pub fn intern(s: &str) -> Sym {
    {
        let t = table().read().unwrap();
        if let Some(&id) = t.by_str.get(s) {
            return Sym(id);
        }
    }
    let mut t = table().write().unwrap();
    // Double-check: another thread may have interned between the locks.
    if let Some(&id) = t.by_str.get(s) {
        return Sym(id);
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = u32::try_from(t.strings.len()).expect("interner overflow");
    t.strings.push(leaked);
    t.by_str.insert(leaked, id);
    Sym(id)
}

/// Intern a `'static` string without copying it on first sight.
pub fn intern_static(s: &'static str) -> Sym {
    {
        let t = table().read().unwrap();
        if let Some(&id) = t.by_str.get(s) {
            return Sym(id);
        }
    }
    let mut t = table().write().unwrap();
    if let Some(&id) = t.by_str.get(s) {
        return Sym(id);
    }
    let id = u32::try_from(t.strings.len()).expect("interner overflow");
    t.strings.push(s);
    t.by_str.insert(s, id);
    Sym(id)
}

/// Intern formatted text without allocating a `String` in the steady state:
/// the format is rendered into a thread-local scratch buffer, and only a
/// first-seen label costs a copy (into the leaked table).
pub fn intern_fmt(args: fmt::Arguments<'_>) -> Sym {
    use fmt::Write;
    thread_local! {
        static SCRATCH: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
    }
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.clear();
        s.write_fmt(args).expect("formatting into a String");
        intern(&s)
    })
}

/// Intern a string literal with a per-call-site cache: the global table is
/// consulted once, then every later pass through this call site is a single
/// atomic load. Use for `&'static str` labels/categories on enqueue paths.
#[macro_export]
macro_rules! sym {
    ($lit:literal) => {{
        static CACHE: ::std::sync::OnceLock<$crate::Sym> = ::std::sync::OnceLock::new();
        *CACHE.get_or_init(|| $crate::intern_static($lit))
    }};
}

impl Sym {
    /// The empty string.
    pub const EMPTY: Sym = Sym(0);

    /// Resolve to the interned contents.
    pub fn as_str(self) -> &'static str {
        table().read().unwrap().strings[self.0 as usize]
    }

    /// The raw table id. For diagnostics only — ids are not stable across
    /// processes or thread interleavings; never order or persist by this.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Default for Sym {
    fn default() -> Self {
        Sym::EMPTY
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        intern(&s)
    }
}

impl From<std::borrow::Cow<'static, str>> for Sym {
    fn from(s: std::borrow::Cow<'static, str>) -> Sym {
        match s {
            std::borrow::Cow::Borrowed(b) => intern_static(b),
            std::borrow::Cow::Owned(o) => intern(&o),
        }
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_contents_same_sym() {
        let a = intern("h2d");
        let b = intern(&String::from("h2d"));
        let c = intern_static("h2d");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.as_str(), "h2d");
    }

    #[test]
    fn distinct_contents_distinct_syms() {
        assert_ne!(intern("alpha-x"), intern("beta-x"));
    }

    #[test]
    fn empty_is_default() {
        assert_eq!(Sym::default(), intern(""));
        assert_eq!(Sym::EMPTY.as_str(), "");
    }

    #[test]
    fn fmt_interning_matches_plain() {
        let bytes = 4096u64;
        let a = intern_fmt(format_args!("H2D[{bytes}B]"));
        assert_eq!(a, intern("H2D[4096B]"));
        assert_eq!(a.as_str(), "H2D[4096B]");
    }

    #[test]
    fn str_equality_compares_contents() {
        assert_eq!(intern("kernel"), "kernel");
        assert_ne!(intern("kernel"), "host");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| intern_fmt(format_args!("t{}-{}", i % 2, j)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Threads with the same label stream got identical symbols.
        assert_eq!(all[0], all[2]);
        for syms in &all {
            for (j, s) in syms.iter().enumerate() {
                assert!(s.as_str().ends_with(&format!("-{j}")));
            }
        }
    }
}
