//! Simulated time.
//!
//! [`SimTime`] is a point on the simulation clock, measured in integer
//! nanoseconds from the start of the run. Integer time keeps the scheduler
//! fully deterministic: there is no floating-point accumulation drift, and
//! ties are broken by submission order rather than by rounding noise.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since the start of the run).
///
/// Durations are represented with the same type; the distinction is by use.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// From integer nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From integer microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From integer milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds, rounding to the nearest nanosecond. Negative or
    /// non-finite inputs are clamped to zero (cost models can produce tiny
    /// negative values through float error; time never runs backwards).
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    pub const fn as_ns(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: durations never go negative.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Human scale: picks ns / µs / ms / s by magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert_eq!(SimTime::from_ns(500).as_secs_f64(), 5e-7);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!(a + b, SimTime::from_ns(140));
        assert_eq!(a - b, SimTime::from_ns(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ns(140));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_ns(1_500).to_string(), "1.50us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.00ms");
        assert_eq!(SimTime::from_secs_f64(2.5).to_string(), "2.500s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_ns(n)).sum();
        assert_eq!(total, SimTime::from_ns(6));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
