//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench-target API compiling
//! and runnable without the real statistics machinery: each benchmark runs a
//! small fixed number of timed iterations and prints the per-iteration
//! wall-clock median. Good enough for smoke-running `cargo bench` offline;
//! not a measurement tool.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    /// Iterations per benchmark (overridable via `sample_size`, floored at 1).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        eprintln!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size;
        run_bench(&id.into(), n, f);
        self
    }
}

pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.samples.push(t0.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    if b.samples.is_empty() {
        eprintln!("  {label}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    eprintln!(
        "  {label}: median {median:?} over {} samples",
        b.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
