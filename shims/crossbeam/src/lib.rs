//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the surface this workspace uses: `crossbeam::thread::scope` with
//! spawn closures that receive the scope, implemented over
//! `std::thread::scope`. Child panics surface as the `Err` variant of the
//! returned result, matching crossbeam's contract.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as stdthread;

    /// A scope handle; spawned threads may borrow from the enclosing stack
    /// frame and are joined before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope>(&'scope stdthread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> stdthread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)))
        }
    }

    /// Run `f` with a scope in which threads can be spawned; joins them all
    /// and returns `Err` if any child (or `f` itself) panicked.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| stdthread::scope(|s| f(&Scope(s)))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut parts = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (i, p) in parts.iter_mut().enumerate() {
                scope.spawn(move |_| *p = i as u64 + 1);
            }
        })
        .expect("no panics");
        assert_eq!(parts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }
}
