//! Offline stand-in for the `serde` crate.
//!
//! Real serde pivots on visitor-based `Serializer`/`Deserializer` traits; this
//! workspace only ever derives `Serialize`/`Deserialize` and round-trips
//! through `serde_json`, so the shim collapses the data model to a concrete
//! [`Content`] tree. The derive macros (re-exported from `serde_derive`)
//! generate `to_content`/`from_content`, and the `serde_json` shim renders and
//! parses that tree. Field names, externally-tagged enums and transparent
//! newtypes follow serde's defaults, so the JSON produced is byte-compatible
//! with what real serde would emit for these types.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both shim traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (JSON object); keys are field/variant names.
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Look up a struct field in a [`Content::Map`] (derive-generated code).
pub fn field<'c>(
    map: &'c [(String, Content)],
    name: &str,
    ty: &str,
) -> Result<&'c Content, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}` while deserializing {ty}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => i64::try_from(*v)
                        .ok()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| DeError::expected("in-range integer", stringify!($t))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t))),
                    _ => Err(DeError::expected("signed integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) => s.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Deserialize::from_content(c)?;
        <[T; N]>::try_from(v).map_err(|_| DeError::expected("fixed-length sequence", "array"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::expected("tuple sequence", "tuple"))?;
                let mut it = s.iter();
                let out = ($(
                    $name::from_content(
                        it.next().ok_or_else(|| DeError::expected("tuple element", "tuple"))?,
                    )?,
                )+);
                Ok(out)
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(42u64.to_content(), Content::U64(42));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!(u64::from_content(&Content::U64(7)).unwrap(), 7);
        assert!(u32::from_content(&Content::U64(u64::MAX)).is_err());
        assert_eq!(f64::from_content(&Content::U64(2)).unwrap(), 2.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(String::from("x"), 1.5f64)];
        let c = v.to_content();
        let back: Vec<(String, f64)> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
    }
}
