//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators, `proptest!` macro family and prelude
//! this workspace uses, over a deterministic splitmix64 generator seeded from
//! the test name. Unlike real proptest there is no shrinking and no
//! persistence file: a failing case panics with the case number and seed so
//! the run can be reproduced exactly (generation is pure in the seed).

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }
    }

    /// Object-safe strategy for heterogeneous unions ([`crate::prop_oneof!`]).
    trait DynStrategy<V> {
        fn gen_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.gen_dyn(rng)
        }
    }

    /// Erase a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy(Box::new(s))
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;
        fn new_value(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 candidates in a row",
                self.reason
            );
        }
    }

    /// Weighted choice between boxed strategies of a common value type.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
            assert!(total > 0, "prop_oneof! total weight must be positive");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_u64_below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = rng.gen_u64_below(span as u64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty integer range strategy");
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    let off = rng.gen_u64_below(span as u64) as i128;
                    (*self.start() as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.gen_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning many magnitudes.
            let mantissa = rng.gen_f64() * 2.0 - 1.0;
            let exp = rng.gen_u64_below(61) as i32 - 30;
            mantissa * 2f64.powi(exp)
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }
}

pub mod sample {
    /// A size-agnostic index: resolved against a length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.0 % size as u64) as usize
        }

        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, 1..64)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.gen_u64_below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct UniformArray<S, const N: usize>(S);

    macro_rules! uniform_fn {
        ($($fname:ident => $n:literal),*) => {$(
            /// An `[V; N]` of independent draws from one strategy.
            pub fn $fname<S: Strategy>(s: S) -> UniformArray<S, $n> {
                UniformArray(s)
            }
        )*};
    }
    uniform_fn!(uniform2 => 2, uniform3 => 3, uniform4 => 4);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.new_value(rng))
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `None` in 1/4 of cases, `Some` otherwise (matches proptest's default
    /// 0.75 `Some` probability closely enough for coverage).
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_u64_below(4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

pub mod test_runner {
    /// splitmix64: deterministic, seedable, passes through every value of the
    /// state exactly once — reproducibility is the whole point here.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn gen_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite fast
            // while still exploring the space (generation is deterministic).
            ProptestConfig { cases: 64 }
        }
    }

    /// Early-exit failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Stable (platform- and run-independent) seed from the test name.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{array, collection, option, sample};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(&$strat, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#018x}): {}",
                            stringify!($name), case + 1, config.cases, seed, e.0
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // No rejection machinery offline: an unmet assumption just skips the
        // rest of this case by succeeding early.
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_values() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..100, 3..10);
        let mut r1 = crate::test_runner::TestRng::new(42);
        let mut r2 = crate::test_runner::TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            a in 3usize..17,
            b in -5i64..5,
            f in -1e3f64..1e3,
            arr in crate::array::uniform3(1i64..6),
            v in crate::collection::vec(any::<bool>(), 2..8),
            opt in crate::option::of(1usize..4),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-1e3..1e3).contains(&f));
            prop_assert!(arr.iter().all(|x| (1..6).contains(x)));
            prop_assert!((2..8).contains(&v.len()));
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn oneof_and_combinators(
            x in prop_oneof![
                2 => (0usize..4).prop_map(|v| v * 10),
                1 => Just(99usize),
            ],
            (n, xs) in (1usize..4).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u64..10, n..n + 1))
            }),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!(x == 99 || x % 10 == 0);
            prop_assert_eq!(xs.len(), n);
            prop_assert!(ix.index(7) < 7);
        }
    }
}
