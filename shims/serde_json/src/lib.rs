//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON against the shim serde's [`Content`] tree. Covers
//! the surface this workspace uses: `to_string`, `to_string_pretty`,
//! `from_str` (including into [`Value`]), and `Value` indexing/comparison in
//! tests. Integers and floats keep their identity through a round-trip
//! (floats always render with a decimal point or exponent).

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A parsed JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::U64(*v),
            Content::I64(v) => Value::I64(*v),
            Content::F64(v) => Value::F64(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(s) => Value::Array(s.iter().map(Value::from_content).collect()),
            Content::Map(m) => Value::Object(
                m.iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::U64(v) => Content::U64(*v),
            Value::I64(v) => Content::I64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Value::to_content).collect()),
            Value::Object(o) => {
                Content::Map(o.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        Value::to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(Value::from_content(c))
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------- writer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // serde_json refuses non-finite floats; `null` is its lossy stand-in.
        out.push_str("null");
        return;
    }
    let s = format!("{v:?}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n".to_string(),
            " ".repeat(w * level),
            " ".repeat(w * (level + 1)),
        ),
        None => (String::new(), String::new(), String::new()),
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_in);
                write_content(item, out, indent, level + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Content::Null),
            Some(b't') if self.eat_lit("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        _ => return Err(Error("unknown escape".into())),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let ch = s.chars().next().unwrap();
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v: Value = from_str(r#"{"title":"Fig X","pts":[[1,2.5],[3,4.0]]}"#).unwrap();
        assert_eq!(v["title"], "Fig X");
        assert_eq!(v["pts"][0][1], 2.5);
        assert_eq!(v["pts"][1][0], 3u64);
        assert!(v["missing"].is_null());
        assert_eq!(v["pts"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":null}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_and_escapes() {
        let v: Value = from_str(r#""café ✓""#).unwrap();
        assert_eq!(v, "café ✓");
        let s = to_string(&"café ✓").unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, "café ✓");
    }
}
