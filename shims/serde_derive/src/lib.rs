//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the shim
//! serde's concrete [`Content`] tree. The item is parsed directly from the
//! proc-macro token stream (no `syn`/`quote`, which are unavailable offline):
//! named/tuple/unit structs, enums with unit/tuple/named variants, and
//! lifetime-generic `Serialize` types. Layout follows serde's defaults —
//! structs as maps, newtypes transparent, enums externally tagged — so the
//! JSON emitted matches what real serde would produce for these types.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

struct Parsed {
    name: String,
    /// Generic parameter list with bounds, e.g. `<'a>` (empty if none).
    generics_decl: String,
    /// Generic arguments for the impl target, e.g. `<'a>` (empty if none).
    generics_use: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VFields,
}

enum VFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    gen_serialize(&p)
        .parse()
        .expect("derive(Serialize) generated invalid code")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    if !p.generics_decl.is_empty() {
        return "compile_error!(\"shim derive(Deserialize) does not support generic types\");"
            .parse()
            .unwrap();
    }
    gen_deserialize(&p)
        .parse()
        .expect("derive(Deserialize) generated invalid code")
}

// ---------------------------------------------------------------- parsing

fn skip_attrs(it: &mut TokenIter) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next();
        if let Some(TokenTree::Group(_)) = it.peek() {
            it.next();
        }
    }
}

fn skip_vis(it: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Consume a leading `<...>` group (balanced), returning its tokens.
fn read_generics(it: &mut TokenIter) -> Vec<TokenTree> {
    let mut out = Vec::new();
    match it.peek() {
        Some(tt) if is_punct(tt, '<') => {}
        _ => return out,
    }
    let mut depth = 0i32;
    for tt in it.by_ref() {
        if is_punct(&tt, '<') {
            depth += 1;
        } else if is_punct(&tt, '>') {
            depth -= 1;
        }
        out.push(tt);
        if depth == 0 {
            break;
        }
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

/// `<'a, T: Bound>` → `<'a, T>`: strip bounds, keep parameter names.
fn generics_use_string(generics: &[TokenTree]) -> String {
    if generics.is_empty() {
        return String::new();
    }
    let inner = &generics[1..generics.len() - 1];
    let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i32;
    let mut in_bound = false;
    for tt in inner {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if depth == 0 && is_punct(tt, ',') {
            params.push(Vec::new());
            in_bound = false;
            continue;
        } else if depth == 0 && (is_punct(tt, ':') || is_punct(tt, '=')) {
            in_bound = true;
            continue;
        }
        if !in_bound {
            params.last_mut().unwrap().push(tt.clone());
        }
    }
    let names: Vec<String> = params
        .iter()
        .filter(|p| !p.is_empty())
        .map(|p| tokens_to_string(p))
        .collect();
    format!("<{}>", names.join(", "))
}

/// Field names of a `{ ... }` fields group.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut it: TokenIter = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                let mut depth = 0i32;
                for tt in it.by_ref() {
                    if is_punct(&tt, '<') {
                        depth += 1;
                    } else if is_punct(&tt, '>') {
                        depth -= 1;
                    } else if depth == 0 && is_punct(&tt, ',') {
                        break;
                    }
                }
            }
            _ => break,
        }
    }
    names
}

/// Number of fields in a `( ... )` fields group.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut last_was_comma = false;
    for tt in stream {
        if is_punct(&tt, '<') {
            depth += 1;
            last_was_comma = false;
        } else if is_punct(&tt, '>') {
            depth -= 1;
            last_was_comma = false;
        } else if depth == 0 && is_punct(&tt, ',') {
            commas += 1;
            last_was_comma = true;
        } else {
            last_was_comma = false;
        }
        any = true;
    }
    if !any {
        0
    } else if last_was_comma {
        commas
    } else {
        commas + 1
    }
}

fn enum_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it: TokenIter = stream.into_iter().peekable();
    let mut vars = Vec::new();
    loop {
        skip_attrs(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let fields = match it.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = tuple_arity(g.stream());
                        it.next();
                        VFields::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = named_fields(g.stream());
                        it.next();
                        VFields::Named(f)
                    }
                    _ => VFields::Unit,
                };
                // Skip an optional discriminant up to the separating comma.
                for tt in it.by_ref() {
                    if is_punct(&tt, ',') {
                        break;
                    }
                }
                vars.push(Variant { name, fields });
            }
            _ => break,
        }
    }
    vars
}

fn parse_item(input: TokenStream) -> Parsed {
    let mut it: TokenIter = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    let item_kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("shim serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("shim serde derive: expected item name, got {other:?}"),
    };
    let generics = read_generics(&mut it);
    let generics_decl = tokens_to_string(&generics);
    let generics_use = generics_use_string(&generics);

    let kind = match item_kind.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(tuple_arity(g.stream()))
            }
            Some(tt) if is_punct(&tt, ';') => Kind::UnitStruct,
            other => panic!("shim serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(enum_variants(g.stream()))
            }
            other => panic!("shim serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("shim serde derive: cannot derive for `{other}` items"),
    };

    Parsed {
        name,
        generics_decl,
        generics_use,
        kind,
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.kind {
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::Enum(vars) => {
            let arms: Vec<String> = vars
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VFields::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VFields::Tuple(1) => format!(
                            "{name}::{vn}(_f0) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_content(_f0))]),"
                        ),
                        VFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("_f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(_f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vn}\"), \
                                 ::serde::Content::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl {decl} ::serde::Serialize for {name} {useargs} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}",
        decl = p.generics_decl,
        useargs = p.generics_use,
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(_c)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&_s[{i}])?"))
                .collect();
            format!(
                "let _s = _c.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                 if _s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{n}-element sequence\", \"{name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::field(_m, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let _m = _c.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join("\n")
            )
        }
        Kind::Enum(vars) => {
            let unit_arms: Vec<String> = vars
                .iter()
                .filter(|v| matches!(v.fields, VFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = vars
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VFields::Unit => None,
                        VFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(_v)?)),"
                        )),
                        VFields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&_s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let _s = _v.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                                 if _s.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{n}-element sequence\", \
                                 \"{name}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}},",
                                elems.join(", ")
                            ))
                        }
                        VFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::field(_fm, \"{f}\", \"{name}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let _fm = _v.as_map().ok_or_else(|| \
                                 ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}},",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match _c {{\n\
                 ::serde::Content::Str(_s) => match _s.as_str() {{\n\
                 {units}\n\
                 _other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"known unit variant\", \"{name}\")),\n\
                 }},\n\
                 ::serde::Content::Map(_m) if _m.len() == 1 => {{\n\
                 let (_k, _v) = &_m[0];\n\
                 match _k.as_str() {{\n\
                 {datas}\n\
                 _other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"known variant\", \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"enum representation\", \"{name}\")),\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, unused_variables)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(_c: &::serde::Content) -> \
             ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
